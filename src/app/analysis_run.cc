#include "app/analysis_run.h"

#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "analysis/cache_mrc.h"
#include "analysis/parallel_pipeline.h"
#include "cache/cache_policy.h"
#include "common/error.h"
#include "common/format.h"
#include "obs/progress.h"
#include "trace/filter.h"

namespace cbs {
namespace app {

namespace {

/**
 * Trace duration and record count without a decode pass when the
 * format allows it: a CBT2 footer already carries both. Other formats
 * pay one batched scan (and are reset() after).
 */
void
scanExtent(OpenedTraceSource &opened, std::uint64_t &count, TimeUs &last)
{
    count = 0;
    last = 0;
    if (Cbt2Reader *reader = opened.cbt2()) {
        count = reader->declaredCount();
        last = reader->maxTimestamp();
        return;
    }
    std::vector<IoRequest> batch;
    while (opened.source().nextBatch(batch, 8192) > 0) {
        count += batch.size();
        last = batch.back().timestamp;
    }
    opened.source().reset();
}

void
validateOptions(const AnalysisRunOptions &options)
{
    const bool partial_flow = !options.emit_partial.empty() ||
                              !options.resume_from.empty() ||
                              !options.checkpoint_path.empty();
    if (partial_flow && options.cache)
        throw UsageError(
            "the snapshot flows (emit-partial/resume/checkpoint) do "
            "not compose with the two-pass cache simulation");
    if (!options.checkpoint_path.empty() && options.threads)
        throw UsageError(
            "checkpointing needs the serial pipeline; drop threads");
    if (!options.resume_from.empty() && options.ingest_lanes)
        throw UsageError(
            "resume skips a record-count prefix, which does not "
            "compose with ingest-lane chunk splitting");
    if (options.cache) {
        try {
            makeCachePolicy(options.cache->policy, 1); // validate name
        } catch (const FatalError &e) {
            throw UsageError(e.what());
        }
        if (options.cache->mode != CacheSimMode::TwoPass &&
            options.cache->policy != "lru")
            throw UsageError(
                "the mrc cache modes compute LRU stack distances; "
                "use cache policy 'lru' or mode 'two-pass'");
        if (options.cache->mode == CacheSimMode::MrcShards &&
            !(options.cache->shards_rate > 0.0 &&
              options.cache->shards_rate <= 1.0))
            throw UsageError(
                "the shards sampling rate must be in (0,1]");
    }
}

} // namespace

AnalysisRunResult
runAnalysis(const AnalysisRunOptions &options)
{
    validateOptions(options);

    AnalysisRunResult result;
    const std::string &path = options.path;

    TraceFormat format = options.format;
    if (format == TraceFormat::Auto)
        format = sniffTraceFormat(path);
    result.format = format;

    // A quarantine sidecar the caller asked us to manage (CLI callers
    // pass an already-armed policy instead and share one stream).
    ErrorPolicyOptions policy = options.error_policy;
    std::ofstream owned_quarantine;
    if (policy.policy == ReadErrorPolicy::Quarantine &&
        policy.quarantine == nullptr &&
        !options.quarantine_path.empty()) {
        owned_quarantine.open(options.quarantine_path);
        if (!owned_quarantine)
            CBS_FATAL("cannot open " << options.quarantine_path);
        policy.quarantine = &owned_quarantine;
    }

    // CBT2 skips the duration scan (the footer carries extent), so its
    // quarantine sidecar can be armed at open. The scanning formats
    // start as plain skip — the sidecar would otherwise hold each bad
    // record twice (scan pass + analysis pass).
    const bool footer_extent = format == TraceFormat::Cbt2;
    TraceOpenOptions open_options;
    open_options.format = format;
    open_options.error_policy = policy;
    if (!footer_extent && policy.policy != ReadErrorPolicy::Strict) {
        open_options.error_policy.policy = ReadErrorPolicy::Skip;
        open_options.error_policy.quarantine = nullptr;
    }
    open_options.retry_attempts = options.retry_attempts;
    if (options.metrics != nullptr)
        open_options.retry.metrics = options.metrics;
    auto opened = openTraceSource(path, open_options);

    std::uint64_t count = 0;
    TimeUs last = 0;
    scanExtent(*opened, count, last);
    result.record_count = count;
    result.last_timestamp = last;
    if (count == 0)
        return result; // empty(): no summary, caller decides the message
    if (!footer_extent && policy.policy != ReadErrorPolicy::Strict)
        opened->reader().setErrorPolicy(policy);

    WorkloadSummaryOptions summary_options;
    summary_options.block_size = options.block_size;
    summary_options.activeness_interval = options.activeness_interval;
    summary_options.duration = last + 1;
    if (options.duration_us) {
        if (*options.duration_us <= last) {
            char msg[160];
            std::snprintf(
                msg, sizeof(msg),
                "--duration-us %llu does not cover the trace "
                "(last timestamp %llu us)",
                static_cast<unsigned long long>(*options.duration_us),
                static_cast<unsigned long long>(last));
            throw UsageError(msg);
        }
        summary_options.duration = *options.duration_us;
    }
    result.summary = std::make_unique<WorkloadSummary>(summary_options);
    WorkloadSummary &summary = *result.summary;
    if (options.classify_volumes)
        result.classifier = std::make_unique<VolumeClassifier>(
            100, options.block_size);

    // Snapshot provenance always reflects what the bundle has seen so
    // far — cumulative across a resumed chain.
    auto provenance = [&] {
        SnapshotProvenance prov;
        prov.source_id = path;
        const BasicStats &stats = summary.basic.stats();
        prov.record_count = stats.requests();
        prov.first_timestamp = stats.first_timestamp;
        prov.last_timestamp = stats.last_timestamp;
        return prov;
    };

    std::uint64_t resume_skip = 0;
    if (!options.resume_from.empty()) {
        SnapshotInfo info = readSnapshotFile(options.resume_from,
                                             summary);
        resume_skip = info.provenance.record_count;
        std::fprintf(stderr,
                     "resuming from %s: %s records of '%s' already "
                     "consumed\n",
                     options.resume_from.c_str(),
                     formatCount(resume_skip).c_str(),
                     info.provenance.source_id.c_str());
    }

    // Resume and max_records reshape the record stream; the wrappers
    // borrow the opened source so its format sniffing, error policy
    // and metrics stay in charge underneath.
    std::unique_ptr<TraceSource> sliced;
    if (resume_skip > 0 || options.max_records > 0) {
        sliced = std::make_unique<BorrowedSource>(opened->source());
        if (resume_skip > 0)
            sliced = std::make_unique<SkipPrefixSource>(
                std::move(sliced), resume_skip);
        if (options.max_records > 0)
            sliced = std::make_unique<HeadLimitSource>(
                std::move(sliced), options.max_records);
    }
    TraceSource &run_source = sliced ? *sliced : opened->source();

    // Ingest metrics attach after the scan so totals cover the
    // analysis pass only.
    if (options.metrics != nullptr)
        opened->reader().attachMetrics(*options.metrics);
    std::optional<obs::ProgressReporter> reporter;
    if (options.progress && options.metrics != nullptr) {
        obs::ProgressOptions progress;
        progress.total_records = count;
        reporter.emplace(*options.metrics, std::cerr, progress);
        reporter->start();
    }

    std::size_t batch_records = options.batch_records;
    if (batch_records == 0)
        batch_records = 4096;

    std::optional<ParallelOptions> parallel;
    if (options.threads) {
        parallel.emplace();
        parallel->shards = *options.threads;
        parallel->batch_size = batch_records;
        parallel->columnar = options.columnar;
        parallel->degraded_ok = options.degraded_ok;
        if (options.ingest_lanes)
            parallel->ingest_lanes = *options.ingest_lanes;
        if (options.metrics != nullptr)
            parallel->metrics = options.metrics;
    }

    // The volume classifier is not part of snapshots (it is not
    // shardable state), so the snapshot flows run without it.
    std::vector<Analyzer *> extras;
    if (result.classifier)
        extras.push_back(result.classifier.get());

    if (parallel) {
        parallel->finalize = options.emit_partial.empty();
        result.analysis_status =
            summary.run(run_source, *parallel, extras);
    } else {
        PipelineOptions serial;
        serial.batch_records = batch_records;
        serial.columnar = options.columnar;
        serial.metrics = options.metrics;
        // Checkpoints must capture pre-finalize state, so the
        // checkpointing run finalizes manually below, after the final
        // checkpoint is on disk.
        serial.finalize = options.emit_partial.empty() &&
                          options.checkpoint_path.empty();
        if (!options.checkpoint_path.empty()) {
            serial.checkpoint_every = options.checkpoint_every;
            serial.checkpoint = [&](std::uint64_t) {
                writeSnapshotFile(options.checkpoint_path, summary,
                                  provenance());
            };
        }
        summary.run(run_source, serial, extras);
        result.analysis_status = summary.pipelineStatus();
    }
    if (reporter)
        reporter->stop();
    // The final checkpoint covers the whole (possibly capped) run, so
    // a later resume continues exactly where this run stopped.
    if (!options.checkpoint_path.empty()) {
        writeSnapshotFile(options.checkpoint_path, summary,
                          provenance());
        if (options.emit_partial.empty())
            for (ShardableAnalyzer *analyzer :
                 summary.shardableAnalyzers())
                analyzer->finalize();
    }
    result.provenance = provenance();

    // The cache simulation is the one analysis the single-sweep bundle
    // cannot host (it needs each volume's final WSS before it can size
    // the caches), so it runs as its own sweep afterwards: two passes
    // for the general-policy engine, one pass for the MRC engines
    // (which read every capacity off the stack-distance histogram at
    // finalize instead of re-simulating).
    if (options.cache) {
        std::uint64_t cache_block = options.cache->block_size != 0
                                        ? options.cache->block_size
                                        : options.block_size;
        opened->source().reset();
        if (options.cache->mode == CacheSimMode::TwoPass) {
            auto sim = std::make_unique<CacheMissAnalyzer>(
                options.cache->fractions, cache_block,
                options.cache->policy);
            if (parallel)
                result.cache_status = sim->runTwoPassParallel(
                    opened->source(), *parallel);
            else
                sim->runTwoPass(opened->source());
            result.cache_sim = std::move(sim);
        } else {
            const bool shards =
                options.cache->mode == CacheSimMode::MrcShards;
            auto mrc = std::make_unique<CacheMrcAnalyzer>(
                options.cache->fractions, cache_block,
                shards ? options.cache->shards_rate : 0.0,
                shards ? options.cache->shards_budget : 0);
            obs::ScopedTimer timer(
                nullptr,
                options.metrics
                    ? &options.metrics->counter("cache_sim.mrc_ns")
                    : nullptr);
            if (parallel) {
                ParallelOptions pass = *parallel;
                pass.metrics_prefix += ".mrc";
                pass.finalize = true;
                result.cache_status = runPipelineParallel(
                    opened->source(), {mrc.get()}, pass);
            } else {
                PipelineOptions pass;
                pass.batch_records = batch_records;
                pass.columnar = options.columnar;
                pass.metrics = options.metrics;
                runPipeline(opened->source(), {mrc.get()}, pass);
            }
            result.cache_sim = std::move(mrc);
        }
        summary.setCacheSim(result.cache_sim.get());
    }

    if (!options.emit_partial.empty())
        writeSnapshotFile(options.emit_partial, summary,
                          result.provenance);

    return result;
}

} // namespace app
} // namespace cbs
