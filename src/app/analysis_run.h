/**
 * @file
 * The library-level analysis-run API: everything `cbs_tool analyze`
 * does, as one composable call.
 *
 * AnalysisRunOptions mirrors the analyze flag set — open/format,
 * error-policy/retry, serial/parallel/columnar execution, the
 * two-pass cache simulation, and the snapshot flows (emit-partial /
 * resume / checkpoint / max-records) — and runAnalysis() turns a
 * trace path into an AnalysisRunResult holding the finalized
 * WorkloadSummary (or the pre-finalize partial already written to
 * disk), the optional cache simulation and volume classifier, and the
 * run's pipeline statuses. The CLI subcommands (`analyze`, `compare`)
 * and any embedder compose this one entry point, so an N-trace
 * comparison is a loop over runs rather than a second implementation
 * of the analysis loop.
 *
 * Behavior contract: byte-identical cbs.summary.v1 output to the
 * pre-refactor `cmdAnalyze` across formats x scalar/columnar x shard
 * counts (golden-checked in tests/app/).
 */

#ifndef CBS_APP_ANALYSIS_RUN_H
#define CBS_APP_ANALYSIS_RUN_H

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/cache_miss.h"
#include "analysis/volume_classes.h"
#include "analysis/workload_summary.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "trace/error_policy.h"
#include "trace/open.h"

namespace cbs {
namespace app {

/**
 * A caller error (invalid option value or combination) as opposed to
 * bad input data. Derives from std::invalid_argument so the CLI's
 * existing catch maps it to exit code 2.
 */
struct UsageError : std::invalid_argument
{
    using std::invalid_argument::invalid_argument;
};

/** Which engine computes the cache miss ratios. */
enum class CacheSimMode
{
    /** The paper's literal method: a WSS pre-pass, then one LRU (or
     *  other policy) instance per volume per fraction. Works for any
     *  policy; costs two decode passes. */
    TwoPass,
    /** Single-pass exact Mattson stack distances: the full LRU
     *  miss-ratio curve in one sweep, bit-identical to TwoPass at
     *  matching capacities. LRU only. */
    Mrc,
    /** Single-pass SHARDS-sampled stack distances: approximate,
     *  constant memory with a budget. LRU only. */
    MrcShards,
};

/** Knobs of the appended cache simulation. */
struct CacheSimOptions
{
    /** Replacement policy name (lru|fifo|clock|lfu|arc); validated up
     *  front — an unknown name is a UsageError, as is a non-lru
     *  policy with an MRC mode. */
    std::string policy = "lru";

    /** Cache sizes as fractions of each volume's WSS. */
    std::vector<double> fractions = {0.01, 0.10};

    /** Simulation block size; 0 = AnalysisRunOptions::block_size. */
    std::uint64_t block_size = 0;

    /** Engine selection (--cache-mode). */
    CacheSimMode mode = CacheSimMode::TwoPass;

    /** MrcShards spatial sampling rate in (0,1]. */
    double shards_rate = 0.01;

    /** MrcShards cap on tracked blocks per volume (0 = fixed rate). */
    std::size_t shards_budget = 0;
};

/**
 * Everything `analyze` can be asked to do, as one options struct.
 * Plain aggregate: set what you need, defaults mirror the CLI
 * defaults.
 */
struct AnalysisRunOptions
{
    /** Input trace path (required). */
    std::string path;

    /** Auto = sniff from content (trace/open.h). */
    TraceFormat format = TraceFormat::Auto;

    // -- analysis knobs ------------------------------------------------
    std::uint64_t block_size = kDefaultBlockSize;
    TimeUs activeness_interval = 10 * units::minute;

    /** Analysis duration override; disengaged = last timestamp + 1.
     *  Must cover the trace (a too-small value is a UsageError). */
    std::optional<TimeUs> duration_us;

    // -- execution -----------------------------------------------------
    /** Requests per pipeline batch (0 falls back to 4096). */
    std::size_t batch_records = 4096;

    /** Columnar kernels (identical results; the toggle exists for
     *  attribution and parity checks). */
    bool columnar = true;

    /** Engaged = shard across this many worker threads (0 = one per
     *  hardware thread); disengaged = the serial pipeline. */
    std::optional<std::size_t> threads;

    /** Parallel decode lanes for splittable inputs; only meaningful
     *  with threads engaged. Disengaged = one lane per shard default. */
    std::optional<std::size_t> ingest_lanes;

    /** Contain an analyzer failure to its lane instead of failing the
     *  run (exit-4 semantics; see AnalysisRunResult::degraded()). */
    bool degraded_ok = false;

    // -- resilience ----------------------------------------------------
    /** Read-error policy. When policy is Quarantine and quarantine is
     *  unset, quarantine_path is opened for the run's duration. */
    ErrorPolicyOptions error_policy{};
    std::string quarantine_path;
    int retry_attempts = 0;

    // -- cache simulation ---------------------------------------------
    /** Engaged = append the cache simulation (two-pass or single-pass
     *  MRC, per CacheSimOptions::mode). Does not compose with the
     *  snapshot flows. */
    std::optional<CacheSimOptions> cache;

    // -- snapshot flows (docs/snapshots.md) ----------------------------
    std::string emit_partial;  //!< write pre-finalize state, skip finalize
    std::string resume_from;   //!< preload state, skip consumed records
    std::string checkpoint_path; //!< periodic snapshots (serial only)
    std::uint64_t checkpoint_every = 1000000;
    std::uint64_t max_records = 0; //!< 0 = unlimited

    // -- extras --------------------------------------------------------
    /** Run the rule-based volume archetype classifier in the same
     *  pass (not snapshot-compatible; the CLI disables it for the
     *  snapshot flows). */
    bool classify_volumes = false;

    /** When set, ingest/pipeline metrics are recorded here. Must
     *  outlive the call. */
    obs::MetricsRegistry *metrics = nullptr;

    /** Periodic progress line on stderr (needs metrics). */
    bool progress = false;
};

/** What a run produced. Owns the analyzer state it reports on. */
struct AnalysisRunResult
{
    /** The characterization bundle; null only for an empty trace.
     *  Finalized unless emit_partial was requested. */
    std::unique_ptr<WorkloadSummary> summary;

    /** The cache simulation results (two-pass or MRC engine), when
     *  requested; already attached to the summary (setCacheSim),
     *  owned here so reporting outlives the run. */
    std::unique_ptr<CacheSimResults> cache_sim;

    /** The archetype classifier, when classify_volumes was set. */
    std::unique_ptr<VolumeClassifier> classifier;

    /** Resolved input format (never Auto). */
    TraceFormat format = TraceFormat::Auto;

    /** Extent-scan record count and last timestamp of the whole
     *  trace (not reduced by resume/max-records slicing). */
    std::uint64_t record_count = 0;
    TimeUs last_timestamp = 0;

    /** Cumulative provenance after the run — what --emit-partial
     *  wrote, or would have written. */
    SnapshotProvenance provenance;

    /** Lane statuses: the analysis pass, and the cache simulation
     *  pass when it ran parallel. */
    PipelineRunStatus analysis_status;
    std::optional<PipelineRunStatus> cache_status;

    /** True for a zero-record trace: summary is null and nothing ran. */
    bool empty() const { return summary == nullptr; }

    /** At least one lane failed under degraded_ok (CLI exit 4). */
    bool degraded() const
    {
        return analysis_status.degraded ||
               (cache_status && cache_status->degraded);
    }
};

/**
 * Run the full characterization of options.path per @p options.
 *
 * Throws UsageError for invalid option values/combinations, and the
 * usual FatalError/TransientError for bad input data — the same
 * exception surface as the readers themselves.
 */
AnalysisRunResult runAnalysis(const AnalysisRunOptions &options);

} // namespace app
} // namespace cbs

#endif // CBS_APP_ANALYSIS_RUN_H
