/**
 * @file
 * N-way trace comparison built on runAnalysis(): every input gets the
 * full characterization bundle (same knobs across the board), and the
 * results render either as a side-by-side findings table or as a
 * deterministic cbs.compare.v1 JSON document.
 *
 * cbs.compare.v1 layout:
 *
 *     {
 *       "schema": "cbs.compare.v1",
 *       "traces": [
 *         {"path": ..., "format": ..., "summary": <cbs.summary.v1>},
 *         ...
 *       ],
 *       "deltas": [
 *         {"metric": ..., "values": [...], "delta_vs_first": [...]},
 *         ...
 *       ]
 *     }
 *
 * Each "summary" embeds the trace's cbs.summary.v1 object verbatim
 * (re-indented), so the document inherits that schema's determinism:
 * byte-identical output across thread counts, batch sizes, and
 * scalar/columnar dispatch. "deltas" lists a fixed set of scalar
 * cross-trace metrics with per-trace values and differences against
 * the first trace (null where a metric is undefined, e.g. a median
 * over zero samples).
 *
 * Traces run sequentially; parallelism is within each run via
 * AnalysisRunOptions::threads, which keeps output order (and bytes)
 * independent of scheduling.
 */

#ifndef CBS_APP_COMPARE_H
#define CBS_APP_COMPARE_H

#include <ostream>
#include <string>
#include <vector>

#include "app/analysis_run.h"

namespace cbs {
namespace app {

/** What to compare and how to analyze each input. */
struct CompareOptions
{
    /** Trace paths, two or more. Order is preserved everywhere;
     *  deltas are relative to paths[0]. */
    std::vector<std::string> paths;

    /** Per-trace analysis knobs. `path` is overwritten per input; the
     *  snapshot/classifier extras are ignored (compare always runs
     *  the plain finalized bundle). The cache simulation, when
     *  configured, runs on every input and adds cache rows/metrics to
     *  the comparison. */
    AnalysisRunOptions base;
};

/** One finished run per input, in paths order. */
struct CompareResult
{
    std::vector<std::string> paths;
    std::vector<AnalysisRunResult> runs;

    /** True when any input had zero records (its run has no summary;
     *  the writers below require all summaries present). */
    bool anyEmpty() const
    {
        for (const AnalysisRunResult &run : runs)
            if (run.empty())
                return true;
        return false;
    }
};

/** Analyze every options.paths entry with the shared knobs. Throws
 *  what runAnalysis throws; empty traces are reported in the result
 *  rather than thrown. */
CompareResult runCompare(const CompareOptions &options);

/** Side-by-side findings table (one value column per trace).
 *  Requires !result.anyEmpty(). */
void writeCompareTable(std::ostream &os, const CompareResult &result);

/** Deterministic cbs.compare.v1 document (see file comment).
 *  Requires !result.anyEmpty(). */
void writeCompareJson(std::ostream &os, const CompareResult &result);

} // namespace app
} // namespace cbs

#endif // CBS_APP_COMPARE_H
