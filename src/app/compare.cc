#include "app/compare.h"

#include <cmath>
#include <optional>
#include <sstream>

#include "analysis/cache_results.h"
#include "common/format.h"
#include "report/json_util.h"
#include "report/table.h"

namespace cbs {
namespace app {

namespace {

using MetricValue = std::optional<double>;

/** One scalar cross-trace metric: a JSON-safe name and how to read it
 *  off a finalized summary (nullopt = undefined for this trace). */
struct CompareMetric
{
    const char *name;
    MetricValue (*value)(const WorkloadSummary &);
};

MetricValue
finiteOrNull(double v)
{
    if (!std::isfinite(v))
        return std::nullopt;
    return v;
}

MetricValue
median(const Ecdf &cdf)
{
    if (cdf.empty())
        return std::nullopt;
    return cdf.quantile(0.5);
}

MetricValue
medianQuantiles(const ExactQuantiles &q)
{
    if (q.empty())
        return std::nullopt;
    return q.quantile(0.5);
}

/** The attached cache simulation when it has at least one configured
 *  WSS fraction, else nullptr (cache metrics read the first and last
 *  fraction in configuration order — {1%, 10%} by default). */
const CacheSimResults *
cacheWithFractions(const WorkloadSummary &s)
{
    const CacheSimResults *cache = s.cacheSim();
    if (cache == nullptr || cache->fractionCount() == 0)
        return nullptr;
    return cache;
}

/** The fixed metric set of the "deltas" section. Extending it is a
 *  schema change — bump cbs.compare.v1 if entries are removed or
 *  reordered (appending is compatible). */
constexpr CompareMetric kCompareMetrics[] = {
    {"volumes",
     [](const WorkloadSummary &s) {
         return finiteOrNull(
             static_cast<double>(s.basic.stats().volumes));
     }},
    {"requests",
     [](const WorkloadSummary &s) {
         return finiteOrNull(
             static_cast<double>(s.basic.stats().requests()));
     }},
    {"write_read_ratio",
     [](const WorkloadSummary &s) {
         return finiteOrNull(s.basic.stats().writeToReadRatio());
     }},
    {"read_wss_share",
     [](const WorkloadSummary &s) {
         return finiteOrNull(s.basic.stats().readWssShare());
     }},
    {"update_write_ratio",
     [](const WorkloadSummary &s) -> MetricValue {
         const BasicStats &stats = s.basic.stats();
         if (stats.write_bytes == 0)
             return std::nullopt;
         return static_cast<double>(stats.update_bytes) /
                static_cast<double>(stats.write_bytes);
     }},
    {"median_randomness_ratio",
     [](const WorkloadSummary &s) {
         return median(s.randomness.ratios());
     }},
    {"median_update_coverage",
     [](const WorkloadSummary &s) {
         return median(s.coverage.coverage());
     }},
    {"median_burstiness",
     [](const WorkloadSummary &s) {
         return median(s.intensity.burstinessRatios());
     }},
    {"waw_raw_count_ratio",
     [](const WorkloadSummary &s) -> MetricValue {
         std::uint64_t raw = s.pairs.count(PairKind::RAW);
         if (raw == 0)
             return std::nullopt;
         return static_cast<double>(s.pairs.count(PairKind::WAW)) /
                static_cast<double>(raw);
     }},
    {"median_interarrival_us",
     [](const WorkloadSummary &s) -> MetricValue {
         const LogHistogram &hist = s.interarrival.global();
         if (hist.empty())
             return std::nullopt;
         return static_cast<double>(hist.quantile(0.5));
     }},
    // Cache-simulation metrics: null unless the compare ran with the
    // cache flags (any engine). First/last configured fraction.
    {"cache_median_read_miss_ratio_first_fraction",
     [](const WorkloadSummary &s) -> MetricValue {
         const CacheSimResults *cache = cacheWithFractions(s);
         if (cache == nullptr)
             return std::nullopt;
         return medianQuantiles(cache->readMissRatios(0));
     }},
    {"cache_median_read_miss_ratio_last_fraction",
     [](const WorkloadSummary &s) -> MetricValue {
         const CacheSimResults *cache = cacheWithFractions(s);
         if (cache == nullptr)
             return std::nullopt;
         return medianQuantiles(
             cache->readMissRatios(cache->fractionCount() - 1));
     }},
    {"cache_median_write_miss_ratio_first_fraction",
     [](const WorkloadSummary &s) -> MetricValue {
         const CacheSimResults *cache = cacheWithFractions(s);
         if (cache == nullptr)
             return std::nullopt;
         return medianQuantiles(cache->writeMissRatios(0));
     }},
    {"cache_median_write_miss_ratio_last_fraction",
     [](const WorkloadSummary &s) -> MetricValue {
         const CacheSimResults *cache = cacheWithFractions(s);
         if (cache == nullptr)
             return std::nullopt;
         return medianQuantiles(
             cache->writeMissRatios(cache->fractionCount() - 1));
     }},
};

void
jsonMetricValue(std::ostream &os, const MetricValue &v)
{
    if (!v) {
        os << "null";
        return;
    }
    jsonio::jsonNumber(os, *v);
}

/** Embed a cbs.summary.v1 document at the current nesting depth: the
 *  first line rides the "summary": key, the rest re-indent by
 *  @p indent spaces, and the trailing newline is dropped. */
void
embedSummaryJson(std::ostream &os, const WorkloadSummary &summary,
                 const std::string &indent)
{
    std::ostringstream buf;
    summary.writeJson(buf);
    const std::string text = buf.str();
    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        if (!first)
            os << '\n' << indent;
        os.write(text.data() + pos, eol - pos);
        first = false;
        pos = eol + 1;
    }
}

} // namespace

CompareResult
runCompare(const CompareOptions &options)
{
    CompareResult result;
    result.paths = options.paths;
    result.runs.reserve(options.paths.size());
    for (const std::string &path : options.paths) {
        AnalysisRunOptions run_options = options.base;
        run_options.path = path;
        // Compare always wants the plain finalized bundle (the cache
        // simulation, when configured, runs on every input).
        run_options.emit_partial.clear();
        run_options.resume_from.clear();
        run_options.checkpoint_path.clear();
        run_options.classify_volumes = false;
        result.runs.push_back(runAnalysis(run_options));
    }
    return result;
}

void
writeCompareTable(std::ostream &os, const CompareResult &result)
{
    TextTable table("Trace comparison");
    std::vector<std::string> header = {"metric"};
    header.insert(header.end(), result.paths.begin(),
                  result.paths.end());
    table.header(header);

    auto row = [&](const char *metric, auto cell) {
        std::vector<std::string> cells = {metric};
        for (const AnalysisRunResult &run : result.runs)
            cells.push_back(cell(*run.summary));
        table.row(cells);
    };
    row("volumes", [](const WorkloadSummary &s) {
        return formatCount(s.basic.stats().volumes);
    });
    row("requests", [](const WorkloadSummary &s) {
        return formatCount(s.basic.stats().requests());
    });
    row("write:read ratio", [](const WorkloadSummary &s) {
        return formatFixed(s.basic.stats().writeToReadRatio(), 2);
    });
    row("read WSS share", [](const WorkloadSummary &s) {
        return formatPercent(s.basic.stats().readWssShare());
    });
    row("update/write traffic", [](const WorkloadSummary &s) {
        const BasicStats &stats = s.basic.stats();
        return formatPercent(
            stats.write_bytes
                ? static_cast<double>(stats.update_bytes) /
                      static_cast<double>(stats.write_bytes)
                : 0.0);
    });
    auto med = [](const Ecdf &cdf) {
        return cdf.empty() ? std::string("-")
                           : formatPercent(cdf.quantile(0.5));
    };
    row("median randomness ratio", [&](const WorkloadSummary &s) {
        return med(s.randomness.ratios());
    });
    row("median update coverage", [&](const WorkloadSummary &s) {
        return med(s.coverage.coverage());
    });
    row("median burstiness", [](const WorkloadSummary &s) {
        return s.intensity.burstinessRatios().empty()
                   ? std::string("-")
                   : formatFixed(
                         s.intensity.burstinessRatios().quantile(0.5),
                         1);
    });
    row("WAW/RAW count ratio", [](const WorkloadSummary &s) {
        std::uint64_t raw = s.pairs.count(PairKind::RAW);
        return raw ? formatFixed(
                         static_cast<double>(
                             s.pairs.count(PairKind::WAW)) /
                             static_cast<double>(raw),
                         2)
                   : std::string("-");
    });
    // Cache rows appear only when at least one run simulated a cache,
    // so cache-less comparisons keep their historical table shape.
    bool any_cache = false;
    for (const AnalysisRunResult &run : result.runs)
        if (cacheWithFractions(*run.summary) != nullptr)
            any_cache = true;
    if (any_cache) {
        auto cache_cell = [](const WorkloadSummary &s, bool last,
                             bool write) {
            const CacheSimResults *cache = cacheWithFractions(s);
            if (cache == nullptr)
                return std::string("-");
            std::size_t i = last ? cache->fractionCount() - 1 : 0;
            const ExactQuantiles &q = write ? cache->writeMissRatios(i)
                                            : cache->readMissRatios(i);
            if (q.empty())
                return std::string("-");
            return formatPercent(q.quantile(0.5)) + " @" +
                   formatPercent(cache->fractionAt(i));
        };
        row("median read miss (first fraction)",
            [&](const WorkloadSummary &s) {
                return cache_cell(s, false, false);
            });
        row("median read miss (last fraction)",
            [&](const WorkloadSummary &s) {
                return cache_cell(s, true, false);
            });
        row("median write miss (first fraction)",
            [&](const WorkloadSummary &s) {
                return cache_cell(s, false, true);
            });
        row("median write miss (last fraction)",
            [&](const WorkloadSummary &s) {
                return cache_cell(s, true, true);
            });
    }
    table.print(os);
}

void
writeCompareJson(std::ostream &os, const CompareResult &result)
{
    os << "{\n  \"schema\": \"cbs.compare.v1\",\n  \"traces\": [";
    const char *sep = "";
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const AnalysisRunResult &run = result.runs[i];
        os << sep << "\n    {\n      \"path\": \"";
        jsonio::jsonEscape(os, result.paths[i]);
        os << "\",\n      \"format\": \""
           << traceFormatName(run.format)
           << "\",\n      \"summary\": ";
        embedSummaryJson(os, *run.summary, "      ");
        os << "\n    }";
        sep = ",";
    }
    os << "\n  ],\n  \"deltas\": [";
    sep = "";
    for (const CompareMetric &metric : kCompareMetrics) {
        std::vector<MetricValue> values;
        values.reserve(result.runs.size());
        for (const AnalysisRunResult &run : result.runs)
            values.push_back(metric.value(*run.summary));
        os << sep << "\n    {\"metric\": \"" << metric.name
           << "\", \"values\": [";
        const char *vsep = "";
        for (const MetricValue &v : values) {
            os << vsep;
            jsonMetricValue(os, v);
            vsep = ", ";
        }
        os << "], \"delta_vs_first\": [";
        vsep = "";
        for (const MetricValue &v : values) {
            os << vsep;
            if (v && values[0])
                jsonio::jsonNumber(os, *v - *values[0]);
            else
                os << "null";
            vsep = ", ";
        }
        os << "]}";
        sep = ",";
    }
    os << "\n  ]\n}\n";
}

} // namespace app
} // namespace cbs
