/**
 * @file
 * ProgressReporter: periodic one-line pipeline progress on a stream.
 *
 * Watches a MetricsRegistry from a background thread and prints, every
 * interval, the cumulative record/byte totals with their rates over
 * the last interval, plus the per-shard queue depths when the parallel
 * pipeline is running:
 *
 *   [cbs] 12,400,000 req (1.3 Mreq/s)  48.4 GiB (410 MiB/s)  queues: 6,2,7,0
 *
 * The reporter only reads the registry (snapshot under the registry
 * mutex), so it composes with any number of producer threads and costs
 * the pipeline nothing between ticks. Intended for stderr — the
 * analysis results go to stdout — but takes any ostream for tests.
 */

#ifndef CBS_OBS_PROGRESS_H
#define CBS_OBS_PROGRESS_H

#include <chrono>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace cbs::obs {

/** Configuration of a ProgressReporter. */
struct ProgressOptions
{
    /** Tick period. */
    std::chrono::milliseconds interval{2000};

    /** Counter names to report as totals + rates. */
    std::string records_counter = "ingest.records";
    std::string bytes_counter = "ingest.bytes";

    /** Gauges named <prefix><i><suffix> are shown as queue depths. */
    std::string depth_prefix = "parallel.shard.";
    std::string depth_suffix = ".queue_depth";

    /** Expected total records (a source's sizeHint(), a CBT2 footer's
     *  declared count, ...). When nonzero each line carries a percent
     *  of total next to the record count. */
    std::uint64_t total_records = 0;

    /** Print one final line from stop() even between ticks. */
    bool final_report = true;
};

class ProgressReporter
{
  public:
    explicit ProgressReporter(const MetricsRegistry &registry,
                              std::ostream &out = std::cerr,
                              ProgressOptions options = ProgressOptions{});

    /** stop()s if still running. */
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Launch the reporting thread (idempotent). */
    void start();

    /** Stop and join the reporting thread (idempotent). */
    void stop();

  private:
    void run();
    void report();

    const MetricsRegistry &registry_;
    std::ostream &out_;
    ProgressOptions options_;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread thread_;

    // Last-tick state for rate computation (reporter thread only).
    std::chrono::steady_clock::time_point last_tick_;
    std::uint64_t last_records_ = 0;
    std::uint64_t last_bytes_ = 0;
};

} // namespace cbs::obs

#endif // CBS_OBS_PROGRESS_H
