#include "obs/metrics.h"

#include "common/error.h"

namespace cbs::obs {
namespace {

/** Find-or-create in a name-keyed map of unique_ptrs. */
template <typename T>
T &
intern(std::map<std::string, std::unique_ptr<T>> &map,
       const std::string &name)
{
    CBS_EXPECT(!name.empty(), "metric name must not be empty");
    auto [it, inserted] = map.try_emplace(name);
    if (inserted)
        it->second = std::make_unique<T>();
    return *it->second;
}

template <typename T>
const T *
find(const std::map<std::string, std::unique_ptr<T>> &map,
     const std::string &name)
{
    auto it = map.find(name);
    return it == map.end() ? nullptr : it->second.get();
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        // Metric names are plain identifiers by convention, but stay
        // correct for anything a caller registers.
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        else
            os << c;
    }
    os << '"';
}

} // namespace

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::mean() const
{
    std::uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n)
             : 0.0;
}

std::uint64_t
Histogram::quantile(double q) const
{
    std::uint64_t n = count();
    if (n == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += bucketCount(i);
        if (seen > target)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return intern(counters_, name);
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return intern(gauges_, name);
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return intern(histograms_, name);
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return find(counters_, name);
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return find(gauges_, name);
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return find(histograms_, name);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter->value());
    return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::int64_t>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(histograms_.size());
    for (const auto &[name, hist] : histograms_)
        out.push_back(name);
    return out;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"schema\": \"cbs.metrics.v1\",\n  \"counters\": {";
    const char *sep = "";
    for (const auto &[name, counter] : counters_) {
        os << sep << "\n    ";
        writeJsonString(os, name);
        os << ": " << counter->value();
        sep = ",";
    }
    os << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    sep = "";
    for (const auto &[name, gauge] : gauges_) {
        os << sep << "\n    ";
        writeJsonString(os, name);
        os << ": " << gauge->value();
        sep = ",";
    }
    os << (gauges_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    sep = "";
    for (const auto &[name, hist] : histograms_) {
        os << sep << "\n    ";
        writeJsonString(os, name);
        os << ": {\"count\": " << hist->count()
           << ", \"sum\": " << hist->sum()
           << ", \"max\": " << hist->max() << ", \"buckets\": [";
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            os << (i ? "," : "") << hist->bucketCount(i);
        os << "]}";
        sep = ",";
    }
    os << (histograms_.empty() ? "" : "\n  ") << "}\n}\n";
}

} // namespace cbs::obs
