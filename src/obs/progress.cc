#include "obs/progress.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/format.h"

namespace cbs::obs {
namespace {

/** "1.3 Mreq/s"-style rate; value is per second. */
std::string
formatRate(double per_second, const char *unit)
{
    char buf[64];
    if (per_second >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f M%s/s", per_second / 1e6,
                      unit);
    else if (per_second >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1f k%s/s", per_second / 1e3,
                      unit);
    else
        std::snprintf(buf, sizeof(buf), "%.0f %s/s", per_second, unit);
    return buf;
}

} // namespace

ProgressReporter::ProgressReporter(const MetricsRegistry &registry,
                                   std::ostream &out,
                                   ProgressOptions options)
    : registry_(registry), out_(out), options_(std::move(options))
{
}

ProgressReporter::~ProgressReporter()
{
    stop();
}

void
ProgressReporter::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (thread_.joinable())
        return;
    stopping_ = false;
    last_tick_ = std::chrono::steady_clock::now();
    last_records_ = 0;
    last_bytes_ = 0;
    thread_ = std::thread([this] { run(); });
}

void
ProgressReporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!thread_.joinable())
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    if (options_.final_report)
        report();
}

void
ProgressReporter::run()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (cv_.wait_for(lock, options_.interval,
                         [this] { return stopping_; }))
            return; // final line printed by stop() after the join
        lock.unlock();
        report();
        lock.lock();
    }
}

void
ProgressReporter::report()
{
    auto now = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(now - last_tick_).count();
    if (dt <= 0)
        dt = 1e-9;

    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    if (const Counter *c = registry_.findCounter(options_.records_counter))
        records = c->value();
    if (const Counter *c = registry_.findCounter(options_.bytes_counter))
        bytes = c->value();

    double record_rate =
        static_cast<double>(records - last_records_) / dt;
    double byte_rate = static_cast<double>(bytes - last_bytes_) / dt;
    last_tick_ = now;
    last_records_ = records;
    last_bytes_ = bytes;

    // Queue depths: gauges named <prefix><index><suffix>, shown in
    // shard-index order.
    std::vector<std::pair<unsigned long, std::int64_t>> depths;
    for (const auto &[name, value] : registry_.gaugeValues()) {
        const std::string &prefix = options_.depth_prefix;
        const std::string &suffix = options_.depth_suffix;
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::string index = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (index.empty() ||
            index.find_first_not_of("0123456789") != std::string::npos)
            continue;
        depths.emplace_back(std::stoul(index), value);
    }
    std::sort(depths.begin(), depths.end());

    std::string line = "[cbs] " + formatCount(records) + " req ";
    if (options_.total_records > 0) {
        double pct = 100.0 * static_cast<double>(records) /
                     static_cast<double>(options_.total_records);
        char pct_buf[32];
        std::snprintf(pct_buf, sizeof(pct_buf), "%.1f%% ",
                      std::min(pct, 100.0));
        line += pct_buf;
    }
    line += "(" + formatRate(record_rate, "req") + ")  " +
                       formatBytes(bytes) + " (" +
                       formatRate(byte_rate, "B") + ")";
    if (!depths.empty()) {
        line += "  queues: ";
        for (std::size_t i = 0; i < depths.size(); ++i) {
            if (i)
                line += ',';
            line += std::to_string(depths[i].second);
        }
    }
    line += '\n';
    // One write: keeps lines whole even when the pipeline also prints.
    out_ << line << std::flush;
}

} // namespace cbs::obs
