#include "obs/prometheus.h"

#include <cctype>

namespace cbs::obs {

std::string
prometheusName(const std::string &name)
{
    std::string out = "cbs_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        unsigned char u = static_cast<unsigned char>(c);
        out.push_back(std::isalnum(u) ? c : '_');
    }
    return out;
}

void
writePrometheusText(const MetricsRegistry &registry, std::ostream &os)
{
    for (const auto &[name, value] : registry.counterValues()) {
        std::string prom = prometheusName(name) + "_total";
        os << "# TYPE " << prom << " counter\n"
           << prom << ' ' << value << '\n';
    }
    for (const auto &[name, value] : registry.gaugeValues()) {
        std::string prom = prometheusName(name);
        os << "# TYPE " << prom << " gauge\n"
           << prom << ' ' << value << '\n';
    }
    for (const std::string &name : registry.histogramNames()) {
        const Histogram *hist = registry.findHistogram(name);
        if (!hist)
            continue;
        std::string prom = prometheusName(name);
        os << "# TYPE " << prom << " histogram\n";
        // Cumulative buckets up to the highest occupied power-of-two
        // bucket; +Inf always closes the family. The upper bound of
        // the registry's bucket i is (2^i - 1), emitted as a plain
        // integer so the exposition stays byte-deterministic.
        std::size_t top = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            if (hist->bucketCount(i))
                top = i + 1;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < top && i < 64; ++i) {
            cumulative += hist->bucketCount(i);
            os << prom << "_bucket{le=\""
               << Histogram::bucketUpperBound(i) << "\"} " << cumulative
               << '\n';
        }
        os << prom << "_bucket{le=\"+Inf\"} " << hist->count() << '\n'
           << prom << "_sum " << hist->sum() << '\n'
           << prom << "_count " << hist->count() << '\n';
    }
}

} // namespace cbs::obs
