/**
 * @file
 * Prometheus-style text exposition of a MetricsRegistry.
 *
 * The registry's dotted metric names (docs/observability.md) map onto
 * the Prometheus naming rules deterministically:
 *
 *   - every name is prefixed `cbs_` and dots become underscores
 *     (`ingest.bad_records` -> `cbs_ingest_bad_records_total`);
 *   - counters get the `_total` suffix and `# TYPE ... counter`;
 *   - gauges keep the bare name and `# TYPE ... gauge`;
 *   - histograms expand to `_bucket{le="..."}` cumulative buckets
 *     (one per occupied power-of-two bucket plus `le="+Inf"`),
 *     `_sum`, and `_count`, with `# TYPE ... histogram`.
 *
 * Output is sorted by metric name and depends only on the registered
 * instruments and their values, so successive scrapes diff cleanly.
 * `cbs_tool serve` writes this exposition next to its window
 * snapshots (docs/serving.md); anything that can read the Prometheus
 * text format — promtool, a node_exporter textfile collector, or a
 * scraping sidecar — consumes it unchanged.
 */

#ifndef CBS_OBS_PROMETHEUS_H
#define CBS_OBS_PROMETHEUS_H

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace cbs::obs {

/** `cbs_` + @p name with every '.' folded to '_' (and any other
 *  character outside [a-zA-Z0-9_] folded to '_' as well). */
std::string prometheusName(const std::string &name);

/** Write every instrument of @p registry in the Prometheus text
 *  exposition format described above. */
void writePrometheusText(const MetricsRegistry &registry,
                         std::ostream &os);

} // namespace cbs::obs

#endif // CBS_OBS_PROMETHEUS_H
