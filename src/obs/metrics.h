/**
 * @file
 * MetricsRegistry and friends: the toolkit's observability substrate.
 *
 * A characterization pipeline churning through a month-scale production
 * trace (billions of requests) is only operable if it can report what
 * it is doing while it runs: ingest throughput, per-analyzer cost,
 * queue backpressure. This header provides the three instrument types
 * the pipelines use —
 *
 *   Counter    monotonically increasing 64-bit total (records, bytes);
 *   Gauge      instantaneous signed value (queue depth, shard count);
 *   Histogram  log2-bucketed distribution of unsigned samples
 *              (batch sizes, per-batch analyzer nanoseconds);
 *
 * — plus the MetricsRegistry that owns them by name, a ScopedTimer
 * that records elapsed nanoseconds on scope exit, and a stable JSON
 * dump for machine consumption (BENCH files, CI trend tracking).
 *
 * Concurrency: every instrument is safe to update from any number of
 * threads (relaxed atomics; totals are exact, cross-instrument skew is
 * tolerated). Registration is mutex-protected; returned references
 * stay valid for the registry's lifetime, so hot paths register once
 * up front and then touch only the atomics. Nothing here is attached
 * by default: instrumented code holds a null registry/instrument
 * pointer and the whole layer costs one pointer check per batch when
 * observability is off.
 *
 * Naming convention (see docs/observability.md): lower_snake_case
 * segments joined by dots, `<subsystem>.<object>.<unit-suffixed
 * metric>`, e.g. `ingest.bytes`, `analyzer.randomness.batch_ns`,
 * `parallel.shard.3.queue_depth`.
 */

#ifndef CBS_OBS_METRICS_H
#define CBS_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cbs::obs {

/** Monotonically increasing event/byte total. */
class Counter
{
  public:
    void
    add(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous signed value (depth, size, configuration echo). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Log2-bucketed histogram of unsigned samples.
 *
 * Bucket i>0 holds samples in [2^(i-1), 2^i - 1]; bucket 0 holds the
 * value 0. 65 buckets cover the full 64-bit range, so one histogram
 * serves nanosecond latencies and byte sizes alike with bounded (2x)
 * relative error — the same trade the analyzers' LogHistogram makes,
 * but with atomic buckets so shard workers can share one instance.
 */
class Histogram
{
  public:
    /** Bucket count: value 0 plus one bucket per power of two. */
    static constexpr std::size_t kBuckets = 65;

    void
    record(std::uint64_t value)
    {
        buckets_[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        // Track the max with a racy-but-monotonic CAS loop.
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
        }
    }

    std::uint64_t count() const;

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    double mean() const;

    /**
     * Upper bound of the bucket containing the q-quantile sample
     * (0 <= q <= 1); 0 when empty. A coarse estimate — within 2x of
     * the true quantile by construction.
     */
    std::uint64_t quantile(double q) const;

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket @p i. */
    static std::uint64_t
    bucketUpperBound(std::size_t i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << i) - 1;
    }

    static std::size_t
    bucketIndex(std::uint64_t value)
    {
        std::size_t index = 0;
        while (value) {
            ++index;
            value >>= 1;
        }
        return index;
    }

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Owner of named instruments.
 *
 * counter()/gauge()/histogram() find-or-create; the returned reference
 * is valid for the registry's lifetime and never moves, so callers
 * cache it and update lock-free. find*() return nullptr instead of
 * creating (used by reporters that observe without registering).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Name-sorted snapshot of every counter's current value. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const;

    /** Name-sorted snapshot of every gauge's current value. */
    std::vector<std::pair<std::string, std::int64_t>> gaugeValues() const;

    /** Name-sorted histogram names; the instruments themselves are
     *  reachable through findHistogram (they never move, so reading
     *  them after the registration lock is dropped is safe). */
    std::vector<std::string> histogramNames() const;

    /**
     * Dump the registry as one JSON object with a stable schema
     * (cbs.metrics.v1): instruments keyed by name inside "counters",
     * "gauges", and "histograms" maps, names sorted, all values
     * integers. Histograms carry {"count","sum","max","buckets"} with
     * a fixed 65-element bucket array, so the key set depends only on
     * which instruments were registered, never on the recorded values.
     */
    void writeJson(std::ostream &os) const;

  private:
    mutable std::mutex mutex_;
    // node-based maps: values never move after insertion.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Records elapsed wall-clock nanoseconds into a Histogram (and
 * optionally a Counter total) on destruction. Null sinks make it a
 * no-op, so call sites need no branches of their own.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *hist, Counter *total_ns = nullptr)
        : hist_(hist), total_ns_(total_ns)
    {
        if (hist_ || total_ns_)
            start_ = std::chrono::steady_clock::now();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (!hist_ && !total_ns_)
            return;
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
        std::uint64_t elapsed =
            ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
        if (hist_)
            hist_->record(elapsed);
        if (total_ns_)
            total_ns_->add(elapsed);
    }

  private:
    Histogram *hist_;
    Counter *total_ns_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace cbs::obs

#endif // CBS_OBS_METRICS_H
