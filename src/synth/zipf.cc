#include "synth/zipf.h"

#include <cmath>

#include "common/error.h"

namespace cbs {

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    // Exact sum below the cutoff; Euler-Maclaurin continuation above it
    // keeps construction O(1)-ish for multi-million-item hot sets while
    // staying well within 0.1% of the exact value.
    constexpr std::uint64_t kExactCutoff = 1u << 20;
    double sum = 0.0;
    std::uint64_t exact_n = n < kExactCutoff ? n : kExactCutoff;
    for (std::uint64_t i = 1; i <= exact_n; ++i)
        sum += std::pow(static_cast<double>(i), -theta);
    if (n > exact_n) {
        double a = static_cast<double>(exact_n);
        double b = static_cast<double>(n);
        // integral of x^-theta from a to b plus endpoint corrections.
        if (theta == 1.0) {
            sum += std::log(b / a);
        } else {
            sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) /
                   (1 - theta);
        }
        sum += 0.5 * (std::pow(b, -theta) - std::pow(a, -theta));
    }
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    CBS_EXPECT(n > 0, "ZipfSampler needs at least one item");
    CBS_EXPECT(theta >= 0.0 && theta < 1.0,
               "ZipfSampler theta must be in [0,1): " << theta);
    zetan_ = zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    double rank = static_cast<double>(n_) *
                  std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t r = static_cast<std::uint64_t>(rank);
    return r >= n_ ? n_ - 1 : r;
}

double
ZipfSampler::probabilityOfRank(std::uint64_t k) const
{
    CBS_EXPECT(k < n_, "rank out of range");
    return std::pow(static_cast<double>(k + 1), -theta_) / zetan_;
}

} // namespace cbs
