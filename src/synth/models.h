/**
 * @file
 * Paper-calibrated population specs for the studied traces: AliCloud
 * and MSRC from the source paper, plus the Tencent Cloud CBS
 * population from the journal extension ("An In-Depth Comparative
 * Analysis of Cloud Block Storage Workloads", arXiv 2203.10766),
 * which re-runs the whole characterization over the public Tencent
 * CBS traces (SNIA IOTTA, ~5k volumes over 9 days).
 *
 * Two variants exist per trace because no single scaled-down trace can
 * preserve both absolute intensities and absolute durations
 * (DESIGN.md §5):
 *
 *  - the *span* spec covers the full trace duration (31 d AliCloud,
 *    7 d MSRC) with request counts scaled down; every duration-valued
 *    metric (active days, RAW/WAW/RAR/WAR times, update intervals,
 *    active periods) is in true paper units, while counts and
 *    intensities carry a uniform 1/scale factor;
 *  - the *intensity* spec covers a short window (hours) at paper-level
 *    per-volume request rates (median 2.55 req/s AliCloud,
 *    3.36 req/s MSRC), so per-minute peak intensities, burstiness
 *    ratios, and inter-arrival percentiles are in true paper units.
 *
 * All knob values trace back to a paper statistic; see the comments on
 * each field and EXPERIMENTS.md for the calibration table.
 */

#ifndef CBS_SYNTH_MODELS_H
#define CBS_SYNTH_MODELS_H

#include "synth/population.h"

namespace cbs {

/** Scale knobs shared by the span specs. */
struct SpanScale
{
    std::size_t volumes;
    double total_requests;
};

/** Default bench scales (seconds-level generation time). */
constexpr SpanScale kAliCloudDefaultScale{1000, 4.0e6};
constexpr SpanScale kMsrcDefaultScale{36, 1.2e6};
constexpr SpanScale kTencentDefaultScale{1000, 4.0e6};

/** Full-duration (31-day) AliCloud population. */
PopulationSpec aliCloudSpanSpec(SpanScale scale = kAliCloudDefaultScale);

/** Full-duration (7-day) MSRC population. */
PopulationSpec msrcSpanSpec(SpanScale scale = kMsrcDefaultScale);

/** Full-duration (9-day) Tencent CBS population (journal extension,
 *  arXiv 2203.10766). */
PopulationSpec tencentSpanSpec(SpanScale scale = kTencentDefaultScale);

/** Short-window AliCloud population at paper-level request rates. */
PopulationSpec aliCloudIntensitySpec(std::size_t volumes = 100,
                                     double window_hours = 1.0);

/** Short-window MSRC population at paper-level request rates. */
PopulationSpec msrcIntensitySpec(std::size_t volumes = 36,
                                 double window_hours = 2.0);

/** Short-window Tencent population at journal-level request rates. */
PopulationSpec tencentIntensitySpec(std::size_t volumes = 100,
                                    double window_hours = 1.0);

/**
 * Day-long population with per-volume burstiness ratios drawn from the
 * paper's Fig. 6 distribution and realized via scheduled bursts.
 * Request rates are scaled down (burstiness is a ratio, so this is
 * scale-free); the 24 h window makes ratios up to ~1000 realizable.
 */
PopulationSpec aliCloudBurstinessSpec(std::size_t volumes = 120);
PopulationSpec msrcBurstinessSpec(std::size_t volumes = 36);
PopulationSpec tencentBurstinessSpec(std::size_t volumes = 120);

/** Master seed used by all benches (fixed for reproducibility). */
constexpr std::uint64_t kBenchSeed = 20200107;

} // namespace cbs

#endif // CBS_SYNTH_MODELS_H
