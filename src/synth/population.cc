#include "synth/population.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "trace/merge.h"

namespace cbs {

double
sampleBands(const std::vector<Band> &bands, Rng &rng)
{
    CBS_EXPECT(!bands.empty(), "empty band mixture");
    double total = 0;
    for (const auto &band : bands)
        total += band.weight;
    CBS_EXPECT(total > 0, "band mixture weights sum to zero");
    double u = rng.uniform() * total;
    for (const auto &band : bands) {
        u -= band.weight;
        if (u < 0)
            return band.range.sample(rng);
    }
    return bands.back().range.sample(rng);
}

namespace {

const SizeDist &
pickSizeDist(const std::vector<std::pair<double, SizeDist>> &choices,
             Rng &rng)
{
    CBS_EXPECT(!choices.empty(), "no size distributions in spec");
    double total = 0;
    for (const auto &[weight, dist] : choices)
        total += weight;
    double u = rng.uniform() * total;
    for (const auto &[weight, dist] : choices) {
        u -= weight;
        if (u < 0)
            return dist;
    }
    return choices.back().second;
}

/** Scale a set of probabilities down if their sum exceeds the cap. */
void
capProbabilities(double cap, double &a, double &b, double &c)
{
    double sum = a + b + c;
    if (sum > cap) {
        double k = cap / sum;
        a *= k;
        b *= k;
        c *= k;
    }
}

std::uint64_t
hotSetSize(double traffic, double per_block, std::uint64_t min_blocks)
{
    double blocks = traffic / std::max(per_block, 1.0);
    return std::max<std::uint64_t>(
        min_blocks, static_cast<std::uint64_t>(blocks) + 1);
}

} // namespace

std::vector<VolumeProfile>
sampleProfiles(const PopulationSpec &spec, std::uint64_t seed)
{
    CBS_EXPECT(spec.volume_count > 0, "spec has no volumes");
    CBS_EXPECT(!spec.wr_ratio_bands.empty(),
               "spec missing write/read ratio bands");
    CBS_EXPECT(!spec.active_days_bands.empty(),
               "spec missing active-days bands");

    Rng rng(mix64(seed) ^ 0x506f70756c617465ULL); // "Populate"
    std::vector<VolumeProfile> profiles;
    profiles.reserve(spec.volume_count);

    double total_days =
        static_cast<double>(spec.duration) / units::day;

    for (std::size_t i = 0; i < spec.volume_count; ++i) {
        VolumeProfile p;
        p.id = static_cast<VolumeId>(i);
        p.seed = rng.nextU64();
        p.block_size = spec.block_size;
        p.capacity_bytes = static_cast<std::uint64_t>(
            spec.capacity_bytes.sample(rng));
        // Round the capacity to whole blocks.
        p.capacity_bytes -= p.capacity_bytes % spec.block_size;

        // Write/read mix.
        double log10_ratio = sampleBands(spec.wr_ratio_bands, rng);
        double ratio = std::pow(10.0, log10_ratio);
        p.write_fraction = ratio / (1.0 + ratio);

        // Active window.
        double min_days = std::min(1.0 / 24.0, total_days);
        double active_days = std::clamp(
            sampleBands(spec.active_days_bands, rng), min_days,
            total_days);
        double slack_days = total_days - active_days;
        double start_day;
        if (active_days < 1.0 && total_days >= 1.0) {
            // Sub-day windows stay within one calendar day so the
            // volume counts as active on exactly one day (Fig. 3).
            double day = std::floor(
                rng.uniform(0.0, std::max(1.0, total_days - 1.0)));
            start_day = day + rng.uniform(0.0, 1.0 - active_days);
        } else {
            start_day = slack_days > 0 ? rng.uniform(0.0, slack_days)
                                       : 0.0;
        }
        p.active_start = static_cast<TimeUs>(start_day * units::day);
        p.active_end = p.active_start +
                       static_cast<TimeUs>(active_days * units::day);

        // Intensity placeholder: lognormal with unit median, rescaled
        // below so the population's expected request total matches the
        // spec target.
        double intensity = rng.logNormal(1.0, spec.intensity_sigma);
        if (p.write_fraction < 0.5)
            intensity *= spec.read_intensity_boost;
        p.arrivals.avg_rate = intensity;
        p.arrivals.burst_fraction = spec.burst_fraction.sample(rng);
        p.arrivals.burst_rate = spec.burst_rate.sample(rng);
        p.arrivals.burst_len_sec = spec.burst_len_sec.sample(rng);

        p.read_sizes = pickSizeDist(spec.read_size_choices, rng);
        p.write_sizes = pickSizeDist(spec.write_size_choices, rng);

        p.seq_start_p = spec.seq_start_p.sample(rng);
        p.seq_run_len = spec.seq_run_len.sample(rng);

        AddressSpaceParams &sp = p.space;
        sp.capacity_blocks = p.capacity_bytes / spec.block_size;
        sp.zipf_theta = spec.zipf_theta;
        sp.write_zipf_theta = spec.write_zipf_theta.sample(rng);
        sp.hot_uniform_mix = spec.hot_uniform_mix.sample(rng);
        sp.read_to_hot_read = spec.read_to_hot_read.sample(rng);
        sp.read_to_shared = spec.read_to_shared.sample(rng);
        sp.read_to_hot_write = spec.read_to_hot_write.sample(rng);
        capProbabilities(0.98, sp.read_to_hot_read, sp.read_to_shared,
                         sp.read_to_hot_write);
        sp.write_to_hot_write = spec.write_to_hot_write.sample(rng);
        sp.write_to_shared = spec.write_to_shared.sample(rng);
        sp.write_to_hot_read = spec.write_to_hot_read.sample(rng);
        capProbabilities(0.98, sp.write_to_hot_write,
                         sp.write_to_shared, sp.write_to_hot_read);

        // Hot-set sizing happens after intensity normalization (it
        // depends on the volume's absolute request count); stash the
        // per-block access targets in the params for the second pass.
        profiles.push_back(p);
    }

    // Second pass: normalize intensities to the request target, then
    // size the hot sets from each volume's absolute expected counts.
    if (spec.target_wr_ratio > 0) {
        // Solve for the read-dominant intensity multiplier k that
        // makes the expected overall write:read ratio hit the target:
        // (W_wd + k W_rd) / (R_wd + k R_rd) = T.
        double w_rd = 0;
        double r_rd = 0;
        double w_wd = 0;
        double r_wd = 0;
        for (const auto &p : profiles) {
            double n = p.expectedRequests();
            double w = n * p.write_fraction;
            if (p.write_fraction < 0.5) {
                w_rd += w;
                r_rd += n - w;
            } else {
                w_wd += w;
                r_wd += n - w;
            }
        }
        double t = spec.target_wr_ratio;
        double denom = t * r_rd - w_rd;
        if (denom > 1e-9 && r_rd > 0) {
            double k = (w_wd - t * r_wd) / denom;
            if (k > 1e-3 && k < 1e3) {
                for (auto &p : profiles) {
                    if (p.write_fraction < 0.5)
                        p.arrivals.avg_rate *= k;
                }
            }
        }
    }

    double expected_total = 0;
    for (const auto &p : profiles)
        expected_total += p.expectedRequests();
    CBS_CHECK(expected_total > 0);
    double scale = spec.total_request_target / expected_total;

    Rng sizing_rng(mix64(seed) ^ 0x486f7453697a65ULL); // "HotSize"
    for (auto &p : profiles) {
        p.arrivals.avg_rate *= scale;
        double window_sec =
            static_cast<double>(p.active_end - p.active_start) / 1e6;
        double min_rate = spec.min_volume_requests / window_sec;
        p.arrivals.avg_rate = std::max(p.arrivals.avg_rate, min_rate);
        if (!spec.burstiness_bands.empty()) {
            // Realize a target burstiness ratio B with scheduled
            // bursts: one burst of B*avg*60 requests makes the peak
            // minute ~B times the average rate.
            double window_sec = static_cast<double>(
                                    p.active_end - p.active_start) /
                                1e6;
            double target_b = std::pow(
                10.0, sampleBands(spec.burstiness_bands, sizing_rng));
            // Extreme targets need their entire burst budget in one
            // peak minute.
            std::uint32_t k =
                target_b > 500
                    ? 1
                    : 1 + static_cast<std::uint32_t>(
                              sizing_rng.uniformInt(
                                  spec.max_scheduled_bursts));
            double total = p.arrivals.avg_rate * window_sec;
            double per_burst = target_b * p.arrivals.avg_rate * 60.0;
            double fraction = k * per_burst / total;
            if (fraction > 0.8) {
                fraction = 0.8;
                per_burst = fraction * total / k;
            }
            double len =
                spec.scheduled_burst_len_sec.sample(sizing_rng);
            p.arrivals.burst_count = k;
            p.arrivals.horizon_us = p.active_end - p.active_start;
            p.arrivals.burst_len_sec = len;
            p.arrivals.burst_rate = std::max(per_burst / len, 1e-6);
            p.arrivals.burst_fraction = std::min(fraction, 0.999);
        }
        double requests = p.expectedRequests();
        double writes = requests * p.write_fraction;
        double reads = requests - writes;
        // Hot sets are sized in blocks, so per-request traffic is
        // converted to block touches first; *_per_hot_block knobs are
        // mean block touches per hot block.
        double block_size = static_cast<double>(spec.block_size);
        double r_bpr = std::max(1.0, p.read_sizes.mean() / block_size);
        double w_bpr = std::max(1.0, p.write_sizes.mean() / block_size);

        AddressSpaceParams &sp = p.space;
        double rphb = spec.reads_per_hot_block.sample(sizing_rng);
        double wphb = spec.writes_per_hot_block.sample(sizing_rng);
        double apsb =
            spec.accesses_per_shared_block.sample(sizing_rng);
        sp.hot_read_blocks = hotSetSize(
            reads * sp.read_to_hot_read * r_bpr, rphb, 64);
        sp.hot_write_blocks = hotSetSize(
            writes * sp.write_to_hot_write * w_bpr, wphb, 64);
        sp.shared_blocks =
            hotSetSize(reads * sp.read_to_shared * r_bpr +
                           writes * sp.write_to_shared * w_bpr,
                       apsb, 64);

    }

    // Daily-scan volumes model the paper's src1_0 source-control
    // server, whose daily sweep dominates the MSRC update intervals
    // (24 h plateau in Table VI) -- so the scans go to the volumes
    // with the *most* write traffic.
    if (spec.daily_scan_volumes > 0) {
        std::vector<std::size_t> order(profiles.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return profiles[a].expectedRequests() *
                                 profiles[a].write_fraction >
                             profiles[b].expectedRequests() *
                                 profiles[b].write_fraction;
                  });
        std::size_t count =
            std::min(spec.daily_scan_volumes, order.size());
        for (std::size_t i = 0; i < count; ++i) {
            VolumeProfile &p = profiles[order[i]];
            p.daily_scan = true;
            p.daily_scan_write_p = spec.daily_scan_write_p;
            p.daily_scan_blocks = spec.daily_scan_blocks;
        }
    }
    return profiles;
}

std::unique_ptr<TraceSource>
makeTrace(const std::vector<VolumeProfile> &profiles)
{
    std::vector<std::unique_ptr<TraceSource>> children;
    children.reserve(profiles.size());
    for (const auto &p : profiles)
        children.push_back(std::make_unique<VolumeWorkload>(p));
    return std::make_unique<MergeSource>(std::move(children));
}

std::unique_ptr<TraceSource>
makeTrace(const PopulationSpec &spec, std::uint64_t seed)
{
    return makeTrace(sampleProfiles(spec, seed));
}

} // namespace cbs
