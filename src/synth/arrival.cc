#include "synth/arrival.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace cbs {

BurstyArrivals::BurstyArrivals(const ArrivalParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    CBS_EXPECT(params.avg_rate > 0, "avg_rate must be positive");
    CBS_EXPECT(params.burst_fraction >= 0 && params.burst_fraction < 1,
               "burst_fraction must be in [0,1)");
    CBS_EXPECT(params.burst_rate > 0 && params.burst_len_sec > 0,
               "burst shape must be positive");

    if (params.burst_count > 0) {
        CBS_EXPECT(params.horizon_us > 0,
                   "scheduled bursts require a horizon");
        scheduleBursts();
    }

    // Requests contributed by one average burst.
    double per_burst = params.burst_rate * params.burst_len_sec;
    // Bursts per second needed for bursts to carry burst_fraction of
    // the target rate; their mean spacing is the reciprocal.
    double bursts_per_sec =
        params.avg_rate * params.burst_fraction / per_burst;
    burst_gap_sec_ = bursts_per_sec > 0 ? 1.0 / bursts_per_sec : 0.0;
    normal_rate_ = params.avg_rate * (1.0 - params.burst_fraction);
    // Floor keeps the exponential sampler well-defined for write-only
    // burst configurations.
    normal_rate_ = std::max(normal_rate_, 1e-12);
}

void
BurstyArrivals::scheduleBursts()
{
    TimeUs len = static_cast<TimeUs>(params_.burst_len_sec * 1e6);
    TimeUs slack = params_.horizon_us > len
                       ? params_.horizon_us - len
                       : 1;
    for (std::uint32_t i = 0; i < params_.burst_count; ++i) {
        TimeUs start = rng_.uniformInt(slack);
        // Align to a minute boundary so a sub-minute burst lands whole
        // inside one peak window (otherwise straddling halves the
        // realized burstiness ratio of the extreme Fig. 6 targets).
        if (len <= units::minute && start >= units::minute)
            start -= start % units::minute;
        schedule_.push_back({start, start + len});
    }
    std::sort(schedule_.begin(), schedule_.end());
    next_scheduled_ = 0;
}

double
BurstyArrivals::normalGapSec()
{
    return rng_.exponential(normal_rate_);
}

TimeUs
BurstyArrivals::next()
{
    if (params_.burst_count > 0)
        return nextScheduled();
    while (true) {
        if (in_burst_) {
            double gap = rng_.exponential(params_.burst_rate);
            TimeUs t = now_ + static_cast<TimeUs>(gap * 1e6);
            if (t < burst_end_) {
                now_ = t;
                return now_;
            }
            // Burst over; fall through to the normal state.
            now_ = burst_end_;
            in_burst_ = false;
            continue;
        }
        // Two competing exponentials: the next background arrival and
        // the next burst start. Whichever fires first wins.
        double arrival_gap = normalGapSec();
        double burst_start_gap = params_.burst_fraction > 0
                                     ? rng_.exponential(1.0 / burst_gap_sec_)
                                     : std::numeric_limits<double>::infinity();
        if (arrival_gap <= burst_start_gap) {
            now_ += static_cast<TimeUs>(arrival_gap * 1e6);
            return now_;
        }
        now_ += static_cast<TimeUs>(burst_start_gap * 1e6);
        in_burst_ = true;
        double len = rng_.exponential(1.0 / params_.burst_len_sec);
        burst_end_ = now_ + std::max<TimeUs>(
                                static_cast<TimeUs>(len * 1e6), 1);
    }
}

TimeUs
BurstyArrivals::nextScheduled()
{
    while (true) {
        // Which regime is `now_` in, and where does it end?
        bool bursting = false;
        TimeUs regime_end = params_.horizon_us;
        for (std::size_t i = next_scheduled_; i < schedule_.size();
             ++i) {
            const auto &[start, end] = schedule_[i];
            if (now_ >= end) {
                next_scheduled_ = i + 1;
                continue;
            }
            if (now_ >= start) {
                bursting = true;
                regime_end = end;
            } else {
                regime_end = start;
            }
            break;
        }
        double rate = bursting ? params_.burst_rate : normal_rate_;
        double gap = rng_.exponential(rate);
        TimeUs t = now_ + static_cast<TimeUs>(gap * 1e6) + 1;
        if (t <= regime_end || regime_end >= params_.horizon_us) {
            now_ = t;
            return now_;
        }
        now_ = regime_end; // cross into the next regime and resample
    }
}

} // namespace cbs
