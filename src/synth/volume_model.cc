#include "synth/volume_model.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

VolumeWorkload::VolumeWorkload(VolumeProfile profile)
    : profile_(std::move(profile)),
      rng_(mix64(profile_.seed) ^ (std::uint64_t{profile_.id} << 32)),
      space_(profile_.space),
      arrivals_(profile_.arrivals, rng_.fork(0x41525256)) // "ARRV"
{
    CBS_EXPECT(profile_.active_end > profile_.active_start,
               "volume " << profile_.id << " has an empty active window");
    CBS_EXPECT(profile_.write_fraction >= 0 &&
                   profile_.write_fraction <= 1,
               "write_fraction out of [0,1]");
    CBS_EXPECT(!profile_.read_sizes.empty() &&
                   !profile_.write_sizes.empty(),
               "volume " << profile_.id << " missing size distributions");
    if (profile_.daily_scan) {
        CBS_EXPECT(profile_.daily_scan_blocks > 0,
                   "daily_scan requires daily_scan_blocks > 0");
        CBS_EXPECT(profile_.daily_scan_write_p >= 0 &&
                       profile_.daily_scan_write_p <= 1,
                   "daily_scan_write_p out of [0,1]");
    }
    // The scan region lives in otherwise-cold space near the end of the
    // volume so it does not collide with the hot/shared regions.
    std::uint64_t cap = space_.capacityBlocks();
    scan_region_start_ = cap - std::min(profile_.daily_scan_blocks, cap / 8)
                         - 1;
}

ByteOffset
VolumeWorkload::scanOffset(TimeUs now)
{
    // Sweep the scan region in lock-step with the time of day: block k
    // is rewritten at the same time every day, giving exactly 24 h
    // update intervals (the paper's src1_0 explanation for MSRC's
    // bimodal Finding 14 pattern).
    TimeUs tod = now % units::day;
    std::uint64_t idx =
        static_cast<std::uint64_t>(static_cast<double>(tod) /
                                   static_cast<double>(units::day) *
                                   static_cast<double>(
                                       profile_.daily_scan_blocks));
    idx = std::min(idx, profile_.daily_scan_blocks - 1);
    return (scan_region_start_ + idx) * profile_.block_size;
}

ByteOffset
VolumeWorkload::pickOffset(Op op, std::uint32_t length, TimeUs now)
{
    SeqRun &run = op == Op::Read ? read_run_ : write_run_;
    std::uint64_t cap_bytes = profile_.capacity_bytes;

    if (run.remaining > 0 && run.next_offset + length <= cap_bytes) {
        --run.remaining;
        ByteOffset offset = run.next_offset;
        run.next_offset = offset + length;
        return offset;
    }
    run.remaining = 0;

    if (op == Op::Write && profile_.daily_scan &&
        rng_.bernoulli(profile_.daily_scan_write_p)) {
        return scanOffset(now);
    }

    BlockNo block = space_.sampleBlock(op, rng_);
    ByteOffset offset = block * profile_.block_size;
    if (offset + length > cap_bytes)
        offset = cap_bytes >= length ? cap_bytes - length : 0;

    if (rng_.bernoulli(profile_.seq_start_p)) {
        // Geometric run length with the configured mean.
        double cont = profile_.seq_run_len /
                      (1.0 + profile_.seq_run_len);
        run.remaining = rng_.geometric(cont);
        run.next_offset = offset + length;
    }
    return offset;
}

bool
VolumeWorkload::generate(IoRequest &req)
{
    TimeUs t = profile_.active_start + arrivals_.next();
    if (t >= profile_.active_end)
        return false;

    Op op = rng_.bernoulli(profile_.write_fraction) ? Op::Write
                                                    : Op::Read;
    const SizeDist &sizes =
        op == Op::Read ? profile_.read_sizes : profile_.write_sizes;
    std::uint32_t length = sizes.sample(rng_);
    length = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(length, profile_.capacity_bytes));

    req.timestamp = t;
    req.volume = profile_.id;
    req.op = op;
    req.length = length;
    req.offset = pickOffset(op, length, t);
    return true;
}

bool
VolumeWorkload::next(IoRequest &req)
{
    return generate(req);
}

std::size_t
VolumeWorkload::nextBatchImpl(std::vector<IoRequest> &out,
                              std::size_t max_requests)
{
    out.clear();
    IoRequest req;
    while (out.size() < max_requests && generate(req))
        out.push_back(req);
    return out.size();
}

void
VolumeWorkload::reset()
{
    rng_ = Rng(mix64(profile_.seed) ^ (std::uint64_t{profile_.id} << 32));
    space_ = AddressSpaceModel(profile_.space);
    arrivals_ = BurstyArrivals(profile_.arrivals, rng_.fork(0x41525256));
    read_run_ = SeqRun{};
    write_run_ = SeqRun{};
}

} // namespace cbs
