/**
 * @file
 * SizeDist: discrete request-size mixture.
 *
 * Real block traces concentrate on a handful of sizes (the filesystem
 * page, the database page, the readahead window...). A weighted discrete
 * mixture over such sizes reproduces the staircase CDFs of Fig. 2.
 */

#ifndef CBS_SYNTH_SIZE_DIST_H
#define CBS_SYNTH_SIZE_DIST_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "synth/rng.h"

namespace cbs {

class SizeDist
{
  public:
    SizeDist() = default;

    /** @param points (size in bytes, weight) pairs; weights need not sum to 1. */
    explicit SizeDist(
        std::vector<std::pair<std::uint32_t, double>> points)
        : points_(std::move(points))
    {
        CBS_EXPECT(!points_.empty(), "SizeDist needs at least one point");
        double total = 0;
        for (const auto &[size, weight] : points_) {
            CBS_EXPECT(size > 0, "request size must be positive");
            CBS_EXPECT(weight >= 0, "negative weight");
            total += weight;
        }
        CBS_EXPECT(total > 0, "SizeDist weights sum to zero");
        cumulative_.reserve(points_.size());
        double acc = 0;
        for (const auto &[size, weight] : points_) {
            acc += weight / total;
            cumulative_.push_back(acc);
        }
        cumulative_.back() = 1.0;
    }

    bool empty() const { return points_.empty(); }

    /** Draw one request size in bytes. */
    std::uint32_t
    sample(Rng &rng) const
    {
        CBS_CHECK(!points_.empty());
        double u = rng.uniform();
        for (std::size_t i = 0; i < cumulative_.size(); ++i) {
            if (u < cumulative_[i])
                return points_[i].first;
        }
        return points_.back().first;
    }

    /** Expected size in bytes. */
    double
    mean() const
    {
        double m = 0;
        double prev = 0;
        for (std::size_t i = 0; i < points_.size(); ++i) {
            m += points_[i].first * (cumulative_[i] - prev);
            prev = cumulative_[i];
        }
        return m;
    }

    const std::vector<std::pair<std::uint32_t, double>> &
    points() const
    {
        return points_;
    }

  private:
    std::vector<std::pair<std::uint32_t, double>> points_;
    std::vector<double> cumulative_;
};

} // namespace cbs

#endif // CBS_SYNTH_SIZE_DIST_H
