/**
 * @file
 * PopulationSpec and profile sampling: turns a distributional
 * description of a volume population into concrete VolumeProfiles.
 *
 * The two shipped specs (aliCloudSpec(), msrcSpec() in
 * synth/models.h) encode the per-volume distributions the paper
 * reports; sampleProfiles() draws a deterministic population from a
 * spec. Intensities are normalized in a second pass so the expected
 * total request count hits the spec's target exactly, which is how the
 * library scales production-sized traces down to bench-sized ones
 * (DESIGN.md §5).
 */

#ifndef CBS_SYNTH_POPULATION_H
#define CBS_SYNTH_POPULATION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synth/volume_model.h"

namespace cbs {

/** A sampling range; log-uniform when @c log is set. */
struct URange
{
    double lo = 0;
    double hi = 0;
    bool log = false;

    double
    sample(Rng &rng) const
    {
        if (lo >= hi)
            return lo;
        return log ? rng.logUniform(lo, hi) : rng.uniform(lo, hi);
    }
};

/** One weighted band of a mixture over ranges. */
struct Band
{
    double weight = 1.0;
    URange range;
};

/** Sample a value from a weighted mixture of ranges. */
double sampleBands(const std::vector<Band> &bands, Rng &rng);

/** Distributional description of a volume population. */
struct PopulationSpec
{
    std::string name;
    std::size_t volume_count = 100;
    TimeUs duration = 31 * units::day;
    std::uint64_t block_size = kDefaultBlockSize;

    /** Expected total requests across all volumes (scaling knob). */
    double total_request_target = 2e6;

    /** Log-space sigma of the per-volume intensity lognormal. */
    double intensity_sigma = 1.8;
    /** Floor on a volume's expected request count after scaling, so
     *  every traced volume actually appears in the scaled trace. */
    double min_volume_requests = 25.0;
    /** Intensity multiplier for read-dominant volumes (MSRC shape). */
    double read_intensity_boost = 1.0;
    /**
     * Target overall write:read request ratio (0 = don't enforce).
     * The aggregate ratio of an independently-sampled population is
     * dominated by a few top-intensity volumes and varies widely
     * across seeds; when set, the sampler solves for a read-dominant-
     * volume intensity multiplier that pins the expected ratio, then
     * re-normalizes the total to the request target.
     */
    double target_wr_ratio = 0.0;

    /** Mixture over log10(write/read ratio). */
    std::vector<Band> wr_ratio_bands;

    /** Mixture over active-window length in days. */
    std::vector<Band> active_days_bands;

    URange capacity_bytes{40.0 * units::GiB, 5.0 * units::TiB, true};

    URange burst_fraction{0.2, 0.7, false};
    URange burst_rate{200, 4000, true};
    URange burst_len_sec{0.5, 30, true};

    /**
     * Burstiness-targeted mode: when non-empty, per-volume burstiness
     * ratios are drawn from these bands (log10 of peak/avg ratio) and
     * realized with scheduled bursts (ArrivalParams::burst_count); the
     * stochastic burst knobs above are ignored. Realizable ratios are
     * bounded by ~0.8 * window / (60 s * bursts), so Fig. 6's >1000
     * tail needs a day-scale window.
     */
    std::vector<Band> burstiness_bands;
    URange scheduled_burst_len_sec{10, 50, false};
    std::uint32_t max_scheduled_bursts = 3;

    /** Request-size mixtures; one choice drawn per volume per op. */
    std::vector<std::pair<double, SizeDist>> read_size_choices;
    std::vector<std::pair<double, SizeDist>> write_size_choices;

    URange seq_start_p{0.05, 0.5, false};
    URange seq_run_len{2, 32, true};

    double zipf_theta = 0.9;
    URange write_zipf_theta{-1, -1, false};
    URange hot_uniform_mix{0.2, 0.5, false};

    /** Population probabilities (independently sampled, then scaled
     *  down proportionally if their sum exceeds ~0.98). */
    URange read_to_hot_read{0.3, 0.8, false};
    URange read_to_shared{0.05, 0.4, false};
    URange read_to_hot_write{0.0, 0.05, false};
    URange write_to_hot_write{0.3, 0.8, false};
    URange write_to_shared{0.05, 0.3, false};
    URange write_to_hot_read{0.0, 0.05, false};

    /** Mean accesses per hot block (sizes the hot sets). */
    URange reads_per_hot_block{4, 200, true};
    URange writes_per_hot_block{8, 2000, true};
    URange accesses_per_shared_block{2, 20, true};

    /** Number of daily-scan volumes (MSRC src1_0-style). */
    std::size_t daily_scan_volumes = 0;
    double daily_scan_write_p = 0.5;
    std::uint64_t daily_scan_blocks = 1 << 16;
};

/**
 * Draw a deterministic volume population from @p spec.
 *
 * @param spec the population description.
 * @param seed master seed; the same (spec, seed) pair yields the same
 *        profiles and therefore the same trace.
 */
std::vector<VolumeProfile> sampleProfiles(const PopulationSpec &spec,
                                          std::uint64_t seed);

/**
 * Build the timestamp-ordered merged trace source for @p profiles.
 * The returned source owns one VolumeWorkload per profile.
 */
std::unique_ptr<TraceSource>
makeTrace(const std::vector<VolumeProfile> &profiles);

/** Convenience: sampleProfiles + makeTrace. */
std::unique_ptr<TraceSource> makeTrace(const PopulationSpec &spec,
                                       std::uint64_t seed);

} // namespace cbs

#endif // CBS_SYNTH_POPULATION_H
