/**
 * @file
 * Rng: deterministic pseudo-random generation for synthetic workloads.
 *
 * Wraps xoshiro256** with the distribution helpers the generators need
 * (uniform, exponential, normal, lognormal, Bernoulli, log-uniform).
 * Seeding is explicit everywhere: the same seed reproduces the same
 * trace bit-for-bit, which the benches rely on.
 */

#ifndef CBS_SYNTH_RNG_H
#define CBS_SYNTH_RNG_H

#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/flat_map.h"

namespace cbs {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Reset the state from @p seed via splitmix64 expansion. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step; guarantees a non-zero state.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        have_gauss_ = false;
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    nextU64()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be positive. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        CBS_CHECK(n > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for n << 2^64.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(nextU64()) * n) >> 64);
    }

    /** Log-uniform double in [lo, hi); both bounds must be positive. */
    double
    logUniform(double lo, double hi)
    {
        CBS_CHECK(lo > 0 && hi >= lo);
        return std::exp(uniform(std::log(lo), std::log(hi)));
    }

    /** Bernoulli trial with success probability @p p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Exponential with rate @p lambda (mean 1/lambda). */
    double
    exponential(double lambda)
    {
        CBS_CHECK(lambda > 0);
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -std::log(u) / lambda;
    }

    /** Standard normal via Box-Muller (cached pair). */
    double
    gaussian()
    {
        if (have_gauss_) {
            have_gauss_ = false;
            return gauss_;
        }
        double u1 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * M_PI * u2;
        gauss_ = r * std::sin(theta);
        have_gauss_ = true;
        return r * std::cos(theta);
    }

    /** Lognormal with the given median and log-space sigma. */
    double
    logNormal(double median, double sigma)
    {
        CBS_CHECK(median > 0);
        return median * std::exp(sigma * gaussian());
    }

    /** Geometric number of extra trials with continue prob @p p. */
    std::uint64_t
    geometric(double p)
    {
        std::uint64_t n = 0;
        while (bernoulli(p) && n < 1u << 20)
            ++n;
        return n;
    }

    /** Derive an independent child generator (stable substreams). */
    Rng
    fork(std::uint64_t stream)
    {
        return Rng(mix64(nextU64() ^ mix64(stream)));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    bool have_gauss_ = false;
    double gauss_ = 0.0;
};

} // namespace cbs

#endif // CBS_SYNTH_RNG_H
