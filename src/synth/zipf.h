/**
 * @file
 * ZipfSampler: Zipf-distributed ranks over [0, n).
 *
 * Uses the Gray et al. quantile method popularized by YCSB: the
 * generalized harmonic number zeta(n, theta) is computed once (O(n)),
 * after which each sample costs O(1). Rank 0 is the hottest item.
 */

#ifndef CBS_SYNTH_ZIPF_H
#define CBS_SYNTH_ZIPF_H

#include <cstdint>

#include "synth/rng.h"

namespace cbs {

class ZipfSampler
{
  public:
    /**
     * @param n number of items (must be positive).
     * @param theta skew in [0, 1); 0.99 is the YCSB "zipfian" default,
     *        0 degenerates to uniform.
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one rank in [0, n); smaller ranks are more likely. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

    /** Probability of rank @p k under this distribution. */
    double probabilityOfRank(std::uint64_t k) const;

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

} // namespace cbs

#endif // CBS_SYNTH_ZIPF_H
