/**
 * @file
 * AddressSpaceModel: the spatial model of one volume's block space.
 *
 * The paper's spatial findings motivate a four-population model:
 *
 *  - a *hot read* region: Zipf-skewed, read-mostly blocks (Finding 10's
 *    read-mostly aggregation; Fig. 11's top-k% read hotspots);
 *  - a *hot write* region: Zipf-skewed, write-mostly blocks that are
 *    rewritten frequently (WAW dominance, short update intervals);
 *  - a *shared* region: blocks receiving both reads and writes, the
 *    source of RAW/WAR interactions;
 *  - the *cold* remainder: uniform one-touch traffic over the whole
 *    capacity (backup/journal-like write-once data and scan reads) —
 *    this is what makes randomness ratios high and keeps the update
 *    coverage below 100%.
 *
 * Requests pick a population according to per-op probabilities and then
 * a block within it (Zipf rank scrambled across the region so hot ranks
 * are not spatially adjacent).
 */

#ifndef CBS_SYNTH_ADDRESS_SPACE_H
#define CBS_SYNTH_ADDRESS_SPACE_H

#include <cstdint>
#include <optional>

#include "common/units.h"
#include "synth/rng.h"
#include "synth/zipf.h"
#include "trace/request.h"

namespace cbs {

/** Spatial parameters of one volume. */
struct AddressSpaceParams
{
    std::uint64_t capacity_blocks = 1 << 20;
    std::uint64_t hot_read_blocks = 4096;
    std::uint64_t hot_write_blocks = 4096;
    std::uint64_t shared_blocks = 8192;
    double zipf_theta = 0.9;
    /** Skew of the hot-write region (< 0 means use zipf_theta). The
     *  write side is hotter than the read side in the paper (Fig. 11:
     *  writes aggregate more strongly in top-k% blocks). */
    double write_zipf_theta = -1.0;
    /** Probability a hot/shared pick is uniform within its region
     *  instead of Zipf: gives every region block a base access rate
     *  (most written blocks rewritten; update WSS ~ write WSS) while
     *  the Zipf component keeps the top-k% traffic aggregation. */
    double hot_uniform_mix = 0.3;

    // Target-population probabilities per op; the remainder is cold.
    double read_to_hot_read = 0.55;
    double read_to_hot_write = 0.02;
    double read_to_shared = 0.30;
    double write_to_hot_write = 0.55;
    double write_to_hot_read = 0.02;
    double write_to_shared = 0.25;
};

class AddressSpaceModel
{
  public:
    /** Block population classes (kColdScan is uniform over capacity). */
    enum class Population
    {
        HotRead,
        HotWrite,
        Shared,
        Cold,
    };

    explicit AddressSpaceModel(const AddressSpaceParams &params);

    /** Pick a block for a new (non-sequential) request of type @p op. */
    BlockNo sampleBlock(Op op, Rng &rng) const;

    /** Pick a block from a specific population (testing / ablations). */
    BlockNo sampleFrom(Population pop, Rng &rng) const;

    /** Which population a request of type @p op targets. */
    Population samplePopulation(Op op, Rng &rng) const;

    std::uint64_t capacityBlocks() const { return params_.capacity_blocks; }
    const AddressSpaceParams &params() const { return params_; }

    /** True if @p block lies in the given hot/shared region. */
    bool inPopulation(BlockNo block, Population pop) const;

  private:
    struct Region
    {
        std::uint64_t start = 0;
        std::uint64_t size = 0;
        std::uint64_t stride = 1;

        bool
        contains(BlockNo block) const
        {
            return block >= start && block < start + size;
        }
    };

    static std::uint64_t scrambleStride(std::uint64_t size);
    BlockNo pickZipf(const Region &region, const ZipfSampler &zipf,
                     Rng &rng) const;

    AddressSpaceParams params_;
    Region hot_read_;
    Region hot_write_;
    Region shared_;
    ZipfSampler read_zipf_;
    ZipfSampler write_zipf_;
    ZipfSampler shared_zipf_;
};

} // namespace cbs

#endif // CBS_SYNTH_ADDRESS_SPACE_H
