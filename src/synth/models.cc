#include "synth/models.h"

#include <cmath>

#include "common/units.h"

namespace cbs {
namespace {

using namespace units;

constexpr std::uint32_t K = 1024;

/**
 * Request-size mixtures. Real block workloads concentrate on a few
 * sizes (page cache, DB page, readahead window); per-volume variety
 * comes from picking one mixture per volume per op.
 *
 * AliCloud targets (Fig. 2): 75% of reads <= 32 KiB, 75% of writes
 * <= 16 KiB; per-volume average read/write sizes with 75th pct near
 * 39.1 / 34.4 KiB. MSRC targets: 75% of reads <= 64 KiB, 75% of
 * writes <= 20 KiB; per-volume averages near 50.8 / 15.3 KiB.
 */
SizeDist
smallPageSizes()
{
    return SizeDist({{4 * K, 0.50}, {8 * K, 0.20}, {16 * K, 0.15},
                     {32 * K, 0.09}, {64 * K, 0.04}, {128 * K, 0.02}});
}

SizeDist
dbPageSizes()
{
    return SizeDist({{8 * K, 0.35}, {16 * K, 0.30}, {32 * K, 0.20},
                     {64 * K, 0.10}, {128 * K, 0.05}});
}

SizeDist
readAheadSizes()
{
    return SizeDist({{16 * K, 0.15}, {32 * K, 0.25}, {64 * K, 0.35},
                     {128 * K, 0.15}, {256 * K, 0.07},
                     {512 * K, 0.03}});
}

SizeDist
journalSizes()
{
    return SizeDist({{4 * K, 0.62}, {8 * K, 0.20}, {16 * K, 0.10},
                     {32 * K, 0.05}, {64 * K, 0.03}});
}

SizeDist
bulkWriteSizes()
{
    return SizeDist({{32 * K, 0.20}, {64 * K, 0.35}, {128 * K, 0.25},
                     {256 * K, 0.15}, {512 * K, 0.05}});
}

SizeDist
mixedWriteSizes()
{
    return SizeDist({{4 * K, 0.30}, {8 * K, 0.25}, {16 * K, 0.20},
                     {32 * K, 0.13}, {64 * K, 0.08}, {128 * K, 0.04}});
}

/** Common spatial/sequential knobs for the AliCloud population. */
void
applyAliCloudCommon(PopulationSpec &spec)
{
    // Fig. 4: 8.5% read-dominant volumes, 42.4% with W/R ratio > 100.
    spec.wr_ratio_bands = {
        {0.085, {-1.2, 0.0, false}},
        {0.491, {0.0, 2.0, false}},
        {0.424, {2.0, 4.0, false}},
    };
    // Overall W:R is 3:1 although 91.5% of volumes are write-dominant:
    // the read-dominant minority carries disproportionate traffic.
    spec.read_intensity_boost = 2.5;
    spec.target_wr_ratio = 3.0;

    // Fig. 2 mixtures (see size helpers above).
    spec.read_size_choices = {{0.48, smallPageSizes()},
                              {0.32, dbPageSizes()},
                              {0.20, readAheadSizes()}};
    spec.write_size_choices = {{0.48, journalSizes()},
                               {0.38, mixedWriteSizes()},
                               {0.14, bulkWriteSizes()}};

    // Finding 8: AliCloud is more random than MSRC -> shorter, rarer
    // sequential runs and a larger cold (uniform) population.
    spec.seq_start_p = {0.02, 0.22, false};
    spec.seq_run_len = {2, 16, true};

    spec.zipf_theta = 0.9;
    spec.write_zipf_theta = {0.97, 0.995, false};
    spec.read_to_hot_read = {0.3, 0.55, false};
    spec.read_to_shared = {0.28, 0.48, false};
    spec.read_to_hot_write = {0.05, 0.14, false};
    spec.write_to_hot_write = {0.6, 0.92, false};
    spec.write_to_shared = {0.05, 0.3, false};
    spec.write_to_hot_read = {0.0, 0.03, false};

    // Finding 14 (update intervals, hours-scale median) and Table I
    // (update WSS = 71% of write WSS): modest rewrite counts per hot
    // block keep the hot-write working set large.
    spec.reads_per_hot_block = {4, 40, true};
    spec.writes_per_hot_block = {2.5, 10, true};
    spec.accesses_per_shared_block = {3, 15, true};
    spec.hot_uniform_mix = {0.25, 0.45, false};

    spec.capacity_bytes = {40.0 * GiB, 5.0 * TiB, true};
    spec.intensity_sigma = 1.8;
}

/** Common spatial/sequential knobs for the MSRC population. */
void
applyMsrcCommon(PopulationSpec &spec)
{
    // 53% of volumes write-dominant, but the read traffic comes from a
    // few large read-heavy volumes (overall W:R = 0.42:1), hence the
    // read-intensity boost.
    spec.wr_ratio_bands = {
        {0.30, {-2.5, -0.3, false}},
        {0.17, {-0.3, 0.0, false}},
        {0.53, {0.0, 1.5, false}},
    };
    spec.read_intensity_boost = 2.3;
    spec.target_wr_ratio = 0.42;

    spec.read_size_choices = {{0.30, dbPageSizes()},
                              {0.45, readAheadSizes()},
                              {0.25, smallPageSizes()}};
    spec.write_size_choices = {{0.50, journalSizes()},
                               {0.35, mixedWriteSizes()},
                               {0.15, bulkWriteSizes()}};

    // Finding 8: all MSRC volumes stay below ~46% random requests.
    spec.seq_start_p = {0.3, 0.8, false};
    spec.seq_run_len = {4, 64, true};

    spec.zipf_theta = 0.9;
    spec.write_zipf_theta = {0.93, 0.99, false};
    spec.read_to_hot_read = {0.25, 0.55, false};
    spec.read_to_shared = {0.1, 0.3, false};
    spec.read_to_hot_write = {0.05, 0.18, false};
    spec.write_to_hot_write = {0.45, 0.8, false};
    spec.write_to_shared = {0.1, 0.35, false};
    spec.write_to_hot_read = {0.0, 0.05, false};

    // Table IV (median update coverage 9.4%) and Finding 12 (short WAW
    // times): few, rapidly-rewritten hot-write blocks.
    spec.reads_per_hot_block = {4, 100, true};
    spec.writes_per_hot_block = {8, 600, true};
    spec.accesses_per_shared_block = {2, 10, true};
    spec.hot_uniform_mix = {0.25, 0.5, false};

    // 36 volumes over 179 disks on 13 servers; enterprise-scale disks.
    spec.capacity_bytes = {16.0 * GiB, 1.0 * TiB, true};
    spec.intensity_sigma = 1.4;

    // The src1_0-style source-control volume whose daily sweep causes
    // the bimodal update intervals of Finding 14.
    spec.daily_scan_volumes = 3;
    spec.daily_scan_write_p = 0.7;
    spec.daily_scan_blocks = 1 << 15;
}

/**
 * Common knobs for the Tencent CBS population (journal extension,
 * arXiv 2203.10766; public traces from the OSCA release on SNIA
 * IOTTA). Calibration targets follow the journal's qualitative
 * placement of Tencent between the other two clouds: write-dominant
 * overall like AliCloud but less extreme, more random than MSRC but
 * less than AliCloud, and dominated by small (4-16 KiB) requests —
 * the traces record sector-granular sizes and most are a handful of
 * sectors.
 */
void
applyTencentCommon(PopulationSpec &spec)
{
    // More read-dominant volumes than AliCloud's 8.5%, fewer extreme
    // writers; overall traffic still write-dominant.
    spec.wr_ratio_bands = {
        {0.22, {-1.5, 0.0, false}},
        {0.50, {0.0, 1.8, false}},
        {0.28, {1.8, 3.5, false}},
    };
    spec.read_intensity_boost = 2.2;
    spec.target_wr_ratio = 2.2;

    // Small-request-heavy mixtures: cloud system volumes (page cache,
    // journals) dominate; bulk streams are rare.
    spec.read_size_choices = {{0.60, smallPageSizes()},
                              {0.28, dbPageSizes()},
                              {0.12, readAheadSizes()}};
    spec.write_size_choices = {{0.55, journalSizes()},
                               {0.35, mixedWriteSizes()},
                               {0.10, bulkWriteSizes()}};

    // Randomness between the clouds: more sequential than AliCloud,
    // far less than MSRC.
    spec.seq_start_p = {0.08, 0.40, false};
    spec.seq_run_len = {2, 32, true};

    spec.zipf_theta = 0.9;
    spec.write_zipf_theta = {0.95, 0.99, false};
    spec.read_to_hot_read = {0.3, 0.55, false};
    spec.read_to_shared = {0.2, 0.4, false};
    spec.read_to_hot_write = {0.05, 0.15, false};
    spec.write_to_hot_write = {0.55, 0.88, false};
    spec.write_to_shared = {0.08, 0.3, false};
    spec.write_to_hot_read = {0.0, 0.04, false};

    // Hot blocks are rewritten more often than AliCloud's (the
    // journal's update-interval counterpart sits nearer MSRC).
    spec.reads_per_hot_block = {4, 60, true};
    spec.writes_per_hot_block = {4, 80, true};
    spec.accesses_per_shared_block = {3, 12, true};
    spec.hot_uniform_mix = {0.25, 0.45, false};

    // CBS volumes are provisioned small relative to AliCloud's.
    spec.capacity_bytes = {20.0 * GiB, 1.0 * TiB, true};
    spec.intensity_sigma = 1.6;
}

} // namespace

PopulationSpec
aliCloudSpanSpec(SpanScale scale)
{
    PopulationSpec spec;
    spec.name = "alicloud";
    spec.volume_count = scale.volumes;
    spec.duration = 31 * day;
    spec.total_request_target = scale.total_requests;
    applyAliCloudCommon(spec);

    // Fig. 3: 15.7% of volumes active only ~1 day; most active the
    // whole month.
    // Reconciling Fig. 3 (15.7% one-day volumes) with Fig. 9 (72.2%
    // of volumes active during 95% of the month) pins the band split.
    spec.active_days_bands = {
        {0.157, {0.15, 0.95, false}},
        {0.06, {1.0, 10.0, false}},
        {0.06, {10.0, 30.0, false}},
        {0.723, {31.0, 31.0, false}},
    };
    // Keep even the least intense month-long volumes visible at the
    // activeness analysis granularity (DESIGN.md 5).
    spec.min_volume_requests = 500.0;

    // Burst shape: wide spread drives the burstiness diversity of
    // Finding 3.
    spec.burst_fraction = {0.1, 0.7, false};
    spec.burst_rate = {100, 5000, true};
    spec.burst_len_sec = {0.2, 20, true};
    return spec;
}

PopulationSpec
msrcSpanSpec(SpanScale scale)
{
    PopulationSpec spec;
    spec.name = "msrc";
    spec.volume_count = scale.volumes;
    spec.duration = 7 * day;
    spec.total_request_target = scale.total_requests;
    applyMsrcCommon(spec);

    // All MSRC volumes are active for all 7 days (Fig. 3).
    spec.active_days_bands = {{1.0, {7.0, 7.0, false}}};

    spec.burst_fraction = {0.5, 0.9, false};
    spec.burst_rate = {200, 4000, true};
    spec.burst_len_sec = {0.5, 30, true};
    return spec;
}

PopulationSpec
tencentSpanSpec(SpanScale scale)
{
    PopulationSpec spec;
    spec.name = "tencent";
    spec.volume_count = scale.volumes;
    spec.duration = 9 * day;
    spec.total_request_target = scale.total_requests;
    applyTencentCommon(spec);

    // Most volumes stay active for the whole 9-day window; a short-
    // lived tail mirrors AliCloud's one-day volumes at reduced share.
    spec.active_days_bands = {
        {0.10, {0.15, 0.95, false}},
        {0.08, {1.0, 6.0, false}},
        {0.82, {9.0, 9.0, false}},
    };
    spec.min_volume_requests = 500.0;

    spec.burst_fraction = {0.15, 0.75, false};
    spec.burst_rate = {100, 5000, true};
    spec.burst_len_sec = {0.2, 20, true};
    return spec;
}

namespace {

/** Shared scaffold of the burstiness-targeted specs. */
PopulationSpec
burstinessScaffold(std::size_t volumes, double median_rate)
{
    PopulationSpec spec;
    spec.volume_count = volumes;
    spec.duration = 36 * hour;
    spec.intensity_sigma = 1.0;
    double mean_factor =
        std::exp(spec.intensity_sigma * spec.intensity_sigma / 2);
    spec.total_request_target = median_rate * mean_factor *
                                static_cast<double>(volumes) *
                                36.0 * 3600.0;
    spec.active_days_bands = {{1.0, {1.5, 1.5, false}}};
    spec.scheduled_burst_len_sec = {10, 50, false};
    spec.max_scheduled_bursts = 3;
    return spec;
}

} // namespace

PopulationSpec
aliCloudBurstinessSpec(std::size_t volumes)
{
    PopulationSpec scaffold = burstinessScaffold(volumes, 0.25);
    PopulationSpec spec = aliCloudSpanSpec(
        SpanScale{volumes, scaffold.total_request_target});
    spec.name = "alicloud-burstiness";
    spec.duration = scaffold.duration;
    spec.intensity_sigma = scaffold.intensity_sigma;
    spec.total_request_target = scaffold.total_request_target;
    spec.active_days_bands = scaffold.active_days_bands;
    spec.scheduled_burst_len_sec = scaffold.scheduled_burst_len_sec;
    spec.max_scheduled_bursts = scaffold.max_scheduled_bursts;
    // Fig. 6 (AliCloud): 25.8% below 10, ~53% in 10-100, 18.1% in
    // 100-1000, 2.6% above 1000.
    spec.burstiness_bands = {
        {0.30, {0.3, 1.0, false}},
        {0.46, {1.0, 2.0, false}},
        {0.19, {2.0, 3.0, false}},
        {0.05, {3.05, 3.3, false}},
    };
    return spec;
}

PopulationSpec
msrcBurstinessSpec(std::size_t volumes)
{
    PopulationSpec scaffold = burstinessScaffold(volumes, 0.4);
    PopulationSpec spec = msrcSpanSpec(
        SpanScale{volumes, scaffold.total_request_target});
    spec.name = "msrc-burstiness";
    spec.duration = scaffold.duration;
    spec.intensity_sigma = scaffold.intensity_sigma;
    spec.total_request_target = scaffold.total_request_target;
    spec.active_days_bands = scaffold.active_days_bands;
    spec.scheduled_burst_len_sec = scaffold.scheduled_burst_len_sec;
    spec.max_scheduled_bursts = scaffold.max_scheduled_bursts;
    // Fig. 6 (MSRC): 2.78% below 10, 38.9% above 100, none above 1000.
    spec.burstiness_bands = {
        {0.028, {0.5, 1.0, false}},
        {0.583, {1.0, 2.0, false}},
        {0.389, {2.0, 2.9, false}},
    };
    return spec;
}

PopulationSpec
tencentBurstinessSpec(std::size_t volumes)
{
    PopulationSpec scaffold = burstinessScaffold(volumes, 0.3);
    PopulationSpec spec = tencentSpanSpec(
        SpanScale{volumes, scaffold.total_request_target});
    spec.name = "tencent-burstiness";
    spec.duration = scaffold.duration;
    spec.intensity_sigma = scaffold.intensity_sigma;
    spec.total_request_target = scaffold.total_request_target;
    spec.active_days_bands = scaffold.active_days_bands;
    spec.scheduled_burst_len_sec = scaffold.scheduled_burst_len_sec;
    spec.max_scheduled_bursts = scaffold.max_scheduled_bursts;
    // Between the two source-paper clouds: a thicker sub-10 tail than
    // AliCloud, and a small >1000 extreme tail MSRC lacks.
    spec.burstiness_bands = {
        {0.15, {0.3, 1.0, false}},
        {0.55, {1.0, 2.0, false}},
        {0.27, {2.0, 3.0, false}},
        {0.03, {3.05, 3.3, false}},
    };
    return spec;
}

PopulationSpec
aliCloudIntensitySpec(std::size_t volumes, double window_hours)
{
    PopulationSpec spec;
    spec.name = "alicloud-intensity";
    spec.volume_count = volumes;
    spec.duration = static_cast<TimeUs>(window_hours * hour);
    applyAliCloudCommon(spec);
    spec.active_days_bands = {
        {1.0, {window_hours / 24.0, window_hours / 24.0, false}}};

    // Paper-level rates: median average intensity 2.55 req/s; with the
    // lognormal's mean/median factor exp(sigma^2/2) this sets the total.
    double median_rate = 2.55;
    double mean_factor =
        std::exp(spec.intensity_sigma * spec.intensity_sigma / 2);
    spec.total_request_target = median_rate * mean_factor *
                                static_cast<double>(volumes) *
                                window_hours * 3600.0;
    // Finding 4: paper p25/p50/p75 inter-arrival groups are 31/145/735
    // microseconds -- requests arrive back-to-back inside bursts.
    spec.burst_fraction = {0.5, 0.92, false};
    spec.burst_rate = {5000, 300000, true};
    spec.burst_len_sec = {0.005, 1.0, true};
    return spec;
}

PopulationSpec
msrcIntensitySpec(std::size_t volumes, double window_hours)
{
    PopulationSpec spec;
    spec.name = "msrc-intensity";
    spec.volume_count = volumes;
    spec.duration = static_cast<TimeUs>(window_hours * hour);
    applyMsrcCommon(spec);
    spec.active_days_bands = {
        {1.0, {window_hours / 24.0, window_hours / 24.0, false}}};

    double median_rate = 3.36;
    double mean_factor =
        std::exp(spec.intensity_sigma * spec.intensity_sigma / 2);
    spec.total_request_target = median_rate * mean_factor *
                                static_cast<double>(volumes) *
                                window_hours * 3600.0;
    // MSRC's bursts are even denser (paper p25 group median 3.5 us).
    spec.burst_fraction = {0.6, 0.95, false};
    spec.burst_rate = {30000, 800000, true};
    spec.burst_len_sec = {0.002, 0.5, true};
    return spec;
}

PopulationSpec
tencentIntensitySpec(std::size_t volumes, double window_hours)
{
    PopulationSpec spec;
    spec.name = "tencent-intensity";
    spec.volume_count = volumes;
    spec.duration = static_cast<TimeUs>(window_hours * hour);
    applyTencentCommon(spec);
    spec.active_days_bands = {
        {1.0, {window_hours / 24.0, window_hours / 24.0, false}}};

    // The Tencent fleet is many light volumes: a lower median rate
    // than either source-paper cloud, with the same lognormal shape.
    double median_rate = 1.6;
    double mean_factor =
        std::exp(spec.intensity_sigma * spec.intensity_sigma / 2);
    spec.total_request_target = median_rate * mean_factor *
                                static_cast<double>(volumes) *
                                window_hours * 3600.0;
    // Second-granular timestamps make sub-second inter-arrivals
    // invisible in the public traces; the generator still produces
    // them (native units are microseconds) at AliCloud-like density.
    spec.burst_fraction = {0.4, 0.9, false};
    spec.burst_rate = {3000, 200000, true};
    spec.burst_len_sec = {0.005, 1.0, true};
    return spec;
}

} // namespace cbs
