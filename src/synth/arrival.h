/**
 * @file
 * BurstyArrivals: a two-state Markov-modulated Poisson arrival process.
 *
 * A volume alternates between a NORMAL state (background rate) and a
 * BURST state (high rate, short duration). This reproduces the load
 * characteristics the paper reports: microsecond-scale inter-arrival
 * percentiles within bursts (Finding 4), per-minute peak intensities far
 * above the average (Findings 1-2), and a wide per-volume spread of
 * burstiness ratios (Finding 3).
 *
 * The process is parameterized by the *target* average rate plus the
 * burst shape (fraction of requests arriving in bursts, in-burst rate,
 * mean burst duration); the normal-state rate and the burst spacing are
 * derived so the long-run average matches the target.
 */

#ifndef CBS_SYNTH_ARRIVAL_H
#define CBS_SYNTH_ARRIVAL_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"
#include "synth/rng.h"

namespace cbs {

/** Shape parameters of the bursty arrival process. */
struct ArrivalParams
{
    double avg_rate = 1.0;       //!< target long-run requests/second
    double burst_fraction = 0.4; //!< fraction of requests inside bursts
    double burst_rate = 2000.0;  //!< requests/second while bursting
    double burst_len_sec = 2.0;  //!< mean burst duration in seconds

    /**
     * Scheduled-burst mode (used by the burstiness-calibrated traces):
     * when burst_count > 0, exactly burst_count bursts are placed
     * uniformly at random within [0, horizon_us) instead of arriving
     * as a Poisson process of bursts. This guarantees each volume
     * realizes its target burstiness ratio within a finite window
     * (Fig. 6 needs the >100 and >1000 tails to actually fire).
     */
    std::uint32_t burst_count = 0;
    TimeUs horizon_us = 0;
};

class BurstyArrivals
{
  public:
    /**
     * @param params process shape; avg_rate must be positive.
     * @param rng generator dedicated to this process.
     */
    BurstyArrivals(const ArrivalParams &params, Rng rng);

    /**
     * Advance to the next arrival.
     *
     * @return the absolute time (microseconds) of the next arrival.
     */
    TimeUs next();

    /** Current absolute time of the process. */
    TimeUs now() const { return now_; }

    /** True if the process is currently in the burst state. */
    bool inBurst() const { return in_burst_; }

  private:
    double normalGapSec();
    void scheduleBursts();
    TimeUs nextScheduled();

    ArrivalParams params_;
    Rng rng_;
    TimeUs now_ = 0;
    bool in_burst_ = false;
    TimeUs burst_end_ = 0;
    double normal_rate_;    //!< derived normal-state rate (req/s)
    double burst_gap_sec_;  //!< derived mean gap between bursts (s)
    std::vector<std::pair<TimeUs, TimeUs>> schedule_; //!< sorted bursts
    std::size_t next_scheduled_ = 0;
};

} // namespace cbs

#endif // CBS_SYNTH_ARRIVAL_H
