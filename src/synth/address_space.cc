#include "synth/address_space.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace cbs {
namespace {

/**
 * Clamp region sizes so all three structured regions plus spacing fit
 * into the capacity; tiny test volumes shrink gracefully.
 */
std::uint64_t
clampRegion(std::uint64_t wanted, std::uint64_t budget)
{
    return std::max<std::uint64_t>(1, std::min(wanted, budget));
}

} // namespace

std::uint64_t
AddressSpaceModel::scrambleStride(std::uint64_t size)
{
    if (size <= 2)
        return 1;
    // Golden-ratio stride decorrelates Zipf rank from block position;
    // bump until coprime with the region size so the map is bijective.
    std::uint64_t stride = static_cast<std::uint64_t>(
        static_cast<double>(size) * 0.6180339887498949);
    stride = std::max<std::uint64_t>(stride, 1);
    while (std::gcd(stride, size) != 1)
        ++stride;
    return stride;
}

AddressSpaceModel::AddressSpaceModel(const AddressSpaceParams &params)
    : params_(params),
      read_zipf_(1, 0.0),
      write_zipf_(1, 0.0),
      shared_zipf_(1, 0.0)
{
    CBS_EXPECT(params.capacity_blocks >= 16,
               "volume too small: " << params.capacity_blocks
                                    << " blocks");
    CBS_EXPECT(params.read_to_hot_read + params.read_to_hot_write +
                       params.read_to_shared <=
                   1.0 + 1e-9,
               "read population probabilities exceed 1");
    CBS_EXPECT(params.write_to_hot_write + params.write_to_hot_read +
                       params.write_to_shared <=
                   1.0 + 1e-9,
               "write population probabilities exceed 1");

    // Structured regions may take at most half the capacity; they are
    // placed at scattered bases so hot ranks of different populations
    // are never spatially adjacent.
    std::uint64_t budget = params.capacity_blocks / 6;
    params_.hot_read_blocks = clampRegion(params.hot_read_blocks, budget);
    params_.hot_write_blocks =
        clampRegion(params.hot_write_blocks, budget);
    params_.shared_blocks = clampRegion(params.shared_blocks, budget);

    std::uint64_t cap = params_.capacity_blocks;
    hot_read_ = Region{cap / 12, params_.hot_read_blocks,
                       scrambleStride(params_.hot_read_blocks)};
    // The hot-write region is rank-contiguous (stride 1): multi-block
    // writes starting at a hot rank then cover the next-hottest ranks,
    // preserving the strong per-block write aggregation of Fig. 11
    // that a scrambled layout would dilute.
    hot_write_ = Region{cap * 5 / 12, params_.hot_write_blocks, 1};
    shared_ = Region{cap * 9 / 12, params_.shared_blocks,
                     scrambleStride(params_.shared_blocks)};

    double write_theta = params_.write_zipf_theta >= 0
                             ? params_.write_zipf_theta
                             : params_.zipf_theta;
    read_zipf_ = ZipfSampler(params_.hot_read_blocks, params_.zipf_theta);
    write_zipf_ = ZipfSampler(params_.hot_write_blocks, write_theta);
    shared_zipf_ = ZipfSampler(params_.shared_blocks, params_.zipf_theta);
}

AddressSpaceModel::Population
AddressSpaceModel::samplePopulation(Op op, Rng &rng) const
{
    double u = rng.uniform();
    if (op == Op::Read) {
        if ((u -= params_.read_to_hot_read) < 0)
            return Population::HotRead;
        if ((u -= params_.read_to_hot_write) < 0)
            return Population::HotWrite;
        if ((u -= params_.read_to_shared) < 0)
            return Population::Shared;
        return Population::Cold;
    }
    if ((u -= params_.write_to_hot_write) < 0)
        return Population::HotWrite;
    if ((u -= params_.write_to_hot_read) < 0)
        return Population::HotRead;
    if ((u -= params_.write_to_shared) < 0)
        return Population::Shared;
    return Population::Cold;
}

BlockNo
AddressSpaceModel::pickZipf(const Region &region, const ZipfSampler &zipf,
                            Rng &rng) const
{
    std::uint64_t rank = rng.bernoulli(params_.hot_uniform_mix)
                             ? rng.uniformInt(region.size)
                             : zipf.sample(rng);
    std::uint64_t scrambled = (rank * region.stride) % region.size;
    return region.start + scrambled;
}

BlockNo
AddressSpaceModel::sampleFrom(Population pop, Rng &rng) const
{
    switch (pop) {
      case Population::HotRead:
        return pickZipf(hot_read_, read_zipf_, rng);
      case Population::HotWrite:
        return pickZipf(hot_write_, write_zipf_, rng);
      case Population::Shared:
        return pickZipf(shared_, shared_zipf_, rng);
      case Population::Cold:
        return rng.uniformInt(params_.capacity_blocks);
    }
    CBS_PANIC("unreachable population");
}

BlockNo
AddressSpaceModel::sampleBlock(Op op, Rng &rng) const
{
    return sampleFrom(samplePopulation(op, rng), rng);
}

bool
AddressSpaceModel::inPopulation(BlockNo block, Population pop) const
{
    switch (pop) {
      case Population::HotRead:
        return hot_read_.contains(block);
      case Population::HotWrite:
        return hot_write_.contains(block);
      case Population::Shared:
        return shared_.contains(block);
      case Population::Cold:
        return !hot_read_.contains(block) &&
               !hot_write_.contains(block) && !shared_.contains(block);
    }
    CBS_PANIC("unreachable population");
}

} // namespace cbs
