/**
 * @file
 * VolumeProfile and VolumeWorkload: one volume's complete workload
 * description and its streaming request generator.
 *
 * A profile combines the temporal model (bursty arrivals within an
 * active window), the op mix, the request-size mixtures, the spatial
 * model (AddressSpaceModel populations + sequential runs), and the
 * optional daily-scan behaviour that reproduces the MSRC source-control
 * volume's 24-hour update intervals (Finding 14).
 */

#ifndef CBS_SYNTH_VOLUME_MODEL_H
#define CBS_SYNTH_VOLUME_MODEL_H

#include <cstdint>
#include <optional>

#include "synth/address_space.h"
#include "synth/arrival.h"
#include "synth/size_dist.h"
#include "trace/trace_source.h"

namespace cbs {

/** Complete workload description of one volume. */
struct VolumeProfile
{
    VolumeId id = 0;
    std::uint64_t seed = 1;
    std::uint64_t capacity_bytes = 128ULL * units::GiB;
    std::uint64_t block_size = kDefaultBlockSize;

    /** Active window within the trace (requests only inside it). */
    TimeUs active_start = 0;
    TimeUs active_end = 31 * units::day;

    ArrivalParams arrivals;

    /** Probability that a request is a write. */
    double write_fraction = 0.75;

    SizeDist read_sizes;
    SizeDist write_sizes;

    AddressSpaceParams space;

    /** Probability a new request starts a sequential run. */
    double seq_start_p = 0.2;
    /** Mean number of follow-on requests in a sequential run. */
    double seq_run_len = 8.0;

    /**
     * Daily-scan mode: a fraction of writes sweeps a dedicated region
     * in lock-step with the time of day, so each swept block is
     * rewritten at the same time every day (24 h update intervals).
     */
    bool daily_scan = false;
    double daily_scan_write_p = 0.0;
    std::uint64_t daily_scan_blocks = 0;

    /** Expected number of requests this profile will generate. */
    double
    expectedRequests() const
    {
        double span = static_cast<double>(active_end - active_start) / 1e6;
        return arrivals.avg_rate * span;
    }
};

/** Streaming generator of one volume's requests (timestamp-ordered). */
class VolumeWorkload : public TraceSource
{
  public:
    explicit VolumeWorkload(VolumeProfile profile);

    bool next(IoRequest &req) override;
    void reset() override;

    const VolumeProfile &profile() const { return profile_; }

  protected:
    std::size_t nextBatchImpl(std::vector<IoRequest> &out,
                              std::size_t max_requests) override;

  private:
    struct SeqRun
    {
        std::uint64_t remaining = 0;
        ByteOffset next_offset = 0;
    };

    bool generate(IoRequest &req);
    ByteOffset pickOffset(Op op, std::uint32_t length, TimeUs now);
    ByteOffset scanOffset(TimeUs now);

    VolumeProfile profile_;
    Rng rng_;
    AddressSpaceModel space_;
    BurstyArrivals arrivals_;
    SeqRun read_run_;
    SeqRun write_run_;
    std::uint64_t scan_region_start_; //!< blocks; placed past mid-capacity
};

} // namespace cbs

#endif // CBS_SYNTH_VOLUME_MODEL_H
