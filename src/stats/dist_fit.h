/**
 * @file
 * DistFit: maximum-likelihood fitting of candidate distributions to
 * positive-valued samples (inter-arrival times, request sizes, update
 * intervals), after the distribution-fitting methodology of Wajahat et
 * al. (MASCOTS 2019), which the paper cites for inter-arrival
 * modeling.
 *
 * Candidates: exponential, lognormal, Pareto (type I), and Weibull
 * (shape fitted by Newton iteration on the profile likelihood). Models
 * are ranked by AIC; with equal parameter counts playing a minor role,
 * this is effectively a log-likelihood ranking.
 */

#ifndef CBS_STATS_DIST_FIT_H
#define CBS_STATS_DIST_FIT_H

#include <string>
#include <vector>

namespace cbs {

/** One fitted candidate. */
struct FittedDistribution
{
    enum class Family
    {
        Exponential, //!< rate lambda          (params[0] = lambda)
        LogNormal,   //!< mu, sigma of log     (params = {mu, sigma})
        Pareto,      //!< x_min, alpha         (params = {x_min, alpha})
        Weibull,     //!< shape k, scale lam   (params = {k, lambda})
    };

    Family family;
    std::vector<double> params;
    double log_likelihood = 0.0;
    double aic = 0.0;

    /** Family name for reports. */
    const char *name() const;

    /** Quantile function of the fitted distribution. */
    double quantile(double q) const;
};

/**
 * Fit all candidate families to strictly-positive samples and return
 * them sorted by AIC, best first.
 *
 * @param samples observations; non-positive values are rejected.
 */
std::vector<FittedDistribution>
fitDistributions(const std::vector<double> &samples);

} // namespace cbs

#endif // CBS_STATS_DIST_FIT_H
