/**
 * @file
 * Ecdf: empirical CDF series over a stored sample set.
 *
 * Produces the (value, fraction <= value) series behind the per-volume
 * CDF figures (Figs. 2(b), 3, 4, 6, 9, 10(a), 12, 13).
 */

#ifndef CBS_STATS_ECDF_H
#define CBS_STATS_ECDF_H

#include <utility>
#include <vector>

#include "stats/exact_quantiles.h"

namespace cbs {

class Ecdf
{
  public:
    Ecdf() = default;
    explicit Ecdf(std::vector<double> values)
        : samples_(std::move(values))
    {
    }

    void add(double x) { samples_.add(x); }

    /** Append all of @p other's samples (shard merge). */
    void merge(const Ecdf &other) { samples_.merge(other.samples_); }

    std::size_t count() const { return samples_.count(); }
    bool empty() const { return samples_.empty(); }

    /** Fraction of samples <= x. */
    double at(double x) const { return samples_.cdfAt(x); }

    /** Value at quantile q. */
    double quantile(double q) const { return samples_.quantile(q); }

    /** The underlying sample set. */
    const ExactQuantiles &samples() const { return samples_; }

    /** Snapshot hooks: delegate to the underlying sample set. */
    void serialize(snap::Sink &sink) const { samples_.serialize(sink); }
    void deserialize(snap::Source &src) { samples_.deserialize(src); }

    /**
     * Full step-function series: one (value, cumulative fraction) point
     * per distinct sample value.
     */
    std::vector<std::pair<double, double>>
    series() const
    {
        std::vector<std::pair<double, double>> out;
        const auto &sorted = samples_.sorted();
        std::size_t n = sorted.size();
        for (std::size_t i = 0; i < n; ++i) {
            // Emit one point per run of equal values, at the run's end.
            if (i + 1 < n && sorted[i + 1] == sorted[i])
                continue;
            out.emplace_back(sorted[i], static_cast<double>(i + 1) /
                                            static_cast<double>(n));
        }
        return out;
    }

    /**
     * Downsampled series with at most @p max_points points, preserving
     * the first and last — for compact report output.
     */
    std::vector<std::pair<double, double>>
    sampledSeries(std::size_t max_points) const
    {
        auto full = series();
        if (full.size() <= max_points || max_points < 2)
            return full;
        std::vector<std::pair<double, double>> out;
        out.reserve(max_points);
        for (std::size_t i = 0; i < max_points; ++i) {
            std::size_t idx = i * (full.size() - 1) / (max_points - 1);
            out.push_back(full[idx]);
        }
        return out;
    }

  private:
    ExactQuantiles samples_;
};

} // namespace cbs

#endif // CBS_STATS_ECDF_H
