#include "stats/space_saving.h"

#include "snapshot/wire.h"

namespace cbs {

SpaceSaving::SpaceSaving(std::size_t capacity)
    : capacity_(capacity), index_(capacity)
{
    CBS_EXPECT(capacity > 0, "SpaceSaving capacity must be positive");
    entries_.reserve(capacity);
}

void
SpaceSaving::reset()
{
    total_ = 0;
    entries_.clear();
    entries_.reserve(capacity_);
    index_ = FlatMap<std::uint32_t>(capacity_);
}

void
SpaceSaving::add(std::uint64_t key, std::uint64_t weight)
{
    total_ += weight;
    if (auto *idx = index_.find(key)) {
        entries_[*idx].count += weight;
        return;
    }
    if (entries_.size() < capacity_) {
        index_.insertOrAssign(key,
                              static_cast<std::uint32_t>(entries_.size()));
        entries_.push_back(Entry{key, weight, 0});
        return;
    }
    // Evict the minimum-count entry; the newcomer inherits its count as
    // the overcount bound (classic space-saving replacement).
    std::size_t min_idx = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].count < entries_[min_idx].count)
            min_idx = i;
    }
    Entry &victim = entries_[min_idx];
    index_.erase(victim.key);
    index_.insertOrAssign(key, static_cast<std::uint32_t>(min_idx));
    victim.overcount = victim.count;
    victim.count += weight;
    victim.key = key;
}

std::vector<SpaceSaving::Entry>
SpaceSaving::topK(std::size_t k) const
{
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) {
                  return a.count > b.count;
              });
    if (sorted.size() > k)
        sorted.resize(k);
    return sorted;
}

std::uint64_t
SpaceSaving::estimate(std::uint64_t key) const
{
    if (const auto *idx = index_.find(key))
        return entries_[*idx].count;
    return 0;
}

void
SpaceSaving::serialize(snap::Sink &sink) const
{
    sink.vu64(capacity_);
    sink.vu64(total_);
    sink.vu64(entries_.size());
    for (const Entry &e : entries_) {
        sink.u64(e.key);
        sink.vu64(e.count);
        sink.vu64(e.overcount);
    }
}

void
SpaceSaving::deserialize(snap::Source &source)
{
    std::uint64_t capacity = source.vu64();
    if (capacity == 0)
        source.fail("SpaceSaving zero capacity");
    std::uint64_t total = source.vu64();
    std::uint64_t n = source.vu64();
    if (n > capacity)
        source.fail("SpaceSaving entry count " + std::to_string(n) +
                    " exceeds capacity " + std::to_string(capacity));
    // 10 bytes minimum per entry on the wire.
    if (n > source.remaining() / 10)
        source.fail("SpaceSaving entry count " + std::to_string(n) +
                    " exceeds the remaining payload");
    capacity_ = static_cast<std::size_t>(capacity);
    total_ = total;
    entries_.clear();
    entries_.reserve(capacity_);
    index_ = FlatMap<std::uint32_t>(capacity_);
    for (std::uint64_t i = 0; i < n; ++i) {
        Entry e;
        e.key = source.u64();
        e.count = source.vu64();
        e.overcount = source.vu64();
        if (index_.find(e.key))
            source.fail("SpaceSaving duplicate key");
        index_.insertOrAssign(e.key,
                              static_cast<std::uint32_t>(i));
        entries_.push_back(e);
    }
}

} // namespace cbs
