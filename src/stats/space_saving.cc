#include "stats/space_saving.h"

namespace cbs {

SpaceSaving::SpaceSaving(std::size_t capacity)
    : capacity_(capacity), index_(capacity)
{
    CBS_EXPECT(capacity > 0, "SpaceSaving capacity must be positive");
    entries_.reserve(capacity);
}

void
SpaceSaving::add(std::uint64_t key, std::uint64_t weight)
{
    total_ += weight;
    if (auto *idx = index_.find(key)) {
        entries_[*idx].count += weight;
        return;
    }
    if (entries_.size() < capacity_) {
        index_.insertOrAssign(key,
                              static_cast<std::uint32_t>(entries_.size()));
        entries_.push_back(Entry{key, weight, 0});
        return;
    }
    // Evict the minimum-count entry; the newcomer inherits its count as
    // the overcount bound (classic space-saving replacement).
    std::size_t min_idx = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].count < entries_[min_idx].count)
            min_idx = i;
    }
    Entry &victim = entries_[min_idx];
    index_.erase(victim.key);
    index_.insertOrAssign(key, static_cast<std::uint32_t>(min_idx));
    victim.overcount = victim.count;
    victim.count += weight;
    victim.key = key;
}

std::vector<SpaceSaving::Entry>
SpaceSaving::topK(std::size_t k) const
{
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) {
                  return a.count > b.count;
              });
    if (sorted.size() > k)
        sorted.resize(k);
    return sorted;
}

std::uint64_t
SpaceSaving::estimate(std::uint64_t key) const
{
    if (const auto *idx = index_.find(key))
        return entries_[*idx].count;
    return 0;
}

} // namespace cbs
