#include "stats/log_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.h"
#include "snapshot/wire.h"

namespace cbs {

LogHistogram::LogHistogram(int sub_bits)
    : sub_bits_(sub_bits), sub_count_(std::uint64_t{1} << sub_bits)
{
    CBS_EXPECT(sub_bits >= 0 && sub_bits <= 16,
               "LogHistogram sub_bits out of range: " << sub_bits);
    // Values below 2^sub_bits are stored exactly in the first
    // (linear) segment; above that, 64 - sub_bits geometric segments
    // of sub_count_ buckets each cover the rest of the u64 range.
    std::size_t segments = static_cast<std::size_t>(64 - sub_bits_);
    buckets_.assign((segments + 1) * sub_count_, 0);
}

std::size_t
LogHistogram::bucketIndex(std::uint64_t value) const
{
    if (value < sub_count_)
        return static_cast<std::size_t>(value);
    // Segment s >= 1 holds values in [2^(sub_bits+s-1), 2^(sub_bits+s)),
    // split into sub_count_ equal sub-buckets.
    int msb = 63 - std::countl_zero(value);
    int segment = msb - sub_bits_ + 1;
    std::uint64_t base = std::uint64_t{1} << msb;
    std::uint64_t sub = (value - base) >> (msb - sub_bits_);
    return static_cast<std::size_t>(segment) * sub_count_ +
           static_cast<std::size_t>(sub);
}

std::uint64_t
LogHistogram::bucketLow(std::size_t index) const
{
    std::size_t segment = index / sub_count_;
    std::uint64_t sub = index % sub_count_;
    if (segment == 0)
        return sub;
    int msb = sub_bits_ + static_cast<int>(segment) - 1;
    return (std::uint64_t{1} << msb) + (sub << (msb - sub_bits_));
}

std::uint64_t
LogHistogram::bucketHigh(std::size_t index) const
{
    std::size_t segment = index / sub_count_;
    if (segment == 0)
        return bucketLow(index);
    int msb = sub_bits_ + static_cast<int>(segment) - 1;
    return bucketLow(index) + (std::uint64_t{1} << (msb - sub_bits_)) - 1;
}

std::uint64_t
LogHistogram::bucketMid(std::size_t index) const
{
    std::uint64_t lo = bucketLow(index);
    std::uint64_t hi = bucketHigh(index);
    return lo + (hi - lo) / 2;
}

void
LogHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    if (weight == 0)
        return;
    buckets_[bucketIndex(value)] += weight;
    count_ += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    CBS_EXPECT(sub_bits_ == other.sub_bits_,
               "merging LogHistograms with different precision");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

std::uint64_t
LogHistogram::minValue() const
{
    return empty() ? 0 : min_;
}

std::uint64_t
LogHistogram::maxValue() const
{
    return empty() ? 0 : max_;
}

double
LogHistogram::mean() const
{
    return empty() ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t
LogHistogram::quantile(double q) const
{
    if (empty())
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target sample (1-based, nearest-rank definition).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::clamp(bucketMid(i), min_, max_);
    }
    return max_;
}

double
LogHistogram::cdfAt(std::uint64_t value) const
{
    if (empty())
        return 0.0;
    std::size_t target = bucketIndex(value);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i <= target && i < buckets_.size(); ++i)
        seen += buckets_[i];
    return static_cast<double>(seen) / static_cast<double>(count_);
}

double
LogHistogram::fractionBelow(std::uint64_t value) const
{
    if (empty() || value == 0)
        return 0.0;
    return cdfAt(value - 1);
}

void
LogHistogram::serialize(snap::Sink &sink) const
{
    sink.vu64(static_cast<std::uint64_t>(sub_bits_));
    sink.vu64(count_);
    sink.f64(sum_);
    sink.u64(min_);
    sink.u64(max_);
    // Sparse buckets: (index, count) pairs in index order. Most
    // histograms touch a small fraction of their bucket array.
    std::uint64_t nonzero = 0;
    for (std::uint64_t b : buckets_)
        nonzero += b != 0;
    sink.vu64(nonzero);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        sink.vu64(i);
        sink.vu64(buckets_[i]);
    }
}

void
LogHistogram::deserialize(snap::Source &source)
{
    std::uint64_t sub_bits = source.vu64();
    if (sub_bits > 16)
        source.fail("LogHistogram sub_bits " +
                    std::to_string(sub_bits) + " out of range");
    *this = LogHistogram(static_cast<int>(sub_bits));
    count_ = source.vu64();
    sum_ = source.f64();
    min_ = source.u64();
    max_ = source.u64();
    std::uint64_t nonzero = source.vu64();
    std::uint64_t total = 0;
    std::uint64_t prev = 0;
    for (std::uint64_t k = 0; k < nonzero; ++k) {
        std::uint64_t index = source.vu64();
        if (index >= buckets_.size() || (k && index <= prev))
            source.fail("LogHistogram bucket index " +
                        std::to_string(index) + " out of order or out "
                        "of range");
        std::uint64_t c = source.vu64();
        if (c == 0)
            source.fail("LogHistogram zero-count sparse bucket");
        buckets_[static_cast<std::size_t>(index)] = c;
        total += c;
        prev = index;
    }
    if (total != count_)
        source.fail("LogHistogram bucket sum " + std::to_string(total) +
                    " does not match count " + std::to_string(count_));
}

std::vector<std::pair<std::uint64_t, double>>
LogHistogram::cdfSeries() const
{
    std::vector<std::pair<std::uint64_t, double>> series;
    if (empty())
        return series;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        seen += buckets_[i];
        series.emplace_back(
            std::clamp(bucketMid(i), min_, max_),
            static_cast<double>(seen) / static_cast<double>(count_));
    }
    return series;
}

} // namespace cbs
