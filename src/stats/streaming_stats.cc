#include "stats/streaming_stats.h"

#include <algorithm>
#include <cmath>

namespace cbs {

void
StreamingStats::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    std::uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    sum_ += other.sum_;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
StreamingStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace cbs
