#include "stats/streaming_stats.h"

#include <algorithm>
#include <cmath>

#include "snapshot/wire.h"

namespace cbs {

void
StreamingStats::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    std::uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    sum_ += other.sum_;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
StreamingStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

void
StreamingStats::serialize(snap::Sink &sink) const
{
    sink.vu64(count_);
    sink.f64(sum_);
    sink.f64(mean_);
    sink.f64(m2_);
    sink.f64(min_);
    sink.f64(max_);
}

void
StreamingStats::deserialize(snap::Source &source)
{
    count_ = source.vu64();
    sum_ = source.f64();
    mean_ = source.f64();
    m2_ = source.f64();
    min_ = source.f64();
    max_ = source.f64();
}

} // namespace cbs
