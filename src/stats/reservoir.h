/**
 * @file
 * Reservoir: uniform reservoir sampling (Vitter's algorithm R).
 *
 * Keeps a fixed-size uniform sample of an unbounded stream; used to
 * bound memory for distributions where the paper plots all samples
 * (e.g., RAW/WAW elapsed-time CDFs at production scale).
 */

#ifndef CBS_STATS_RESERVOIR_H
#define CBS_STATS_RESERVOIR_H

#include <cstdint>
#include <type_traits>
#include <vector>

#include "snapshot/wire.h"

namespace cbs {

template <typename T>
class Reservoir
{
    static_assert(std::is_arithmetic_v<T>,
                  "Reservoir snapshot support covers arithmetic "
                  "element types");
  public:
    /**
     * @param capacity sample size to retain.
     * @param seed PRNG seed (deterministic sampling for reproducibility).
     */
    explicit Reservoir(std::size_t capacity, std::uint64_t seed = 42)
        : capacity_(capacity), seed_(seed ? seed : 1), state_(seed_)
    {
        sample_.reserve(capacity);
    }

    /** Return to the freshly-constructed state: the sample empties and
     *  the PRNG rewinds to the construction seed, so a reset sampler
     *  is indistinguishable from a new one (windowed re-use). */
    void
    reset()
    {
        state_ = seed_;
        seen_ = 0;
        sample_.clear();
    }

    /** Offer one stream element. */
    void
    add(const T &value)
    {
        ++seen_;
        if (sample_.size() < capacity_) {
            sample_.push_back(value);
            return;
        }
        std::uint64_t j = nextRandom() % seen_;
        if (j < capacity_)
            sample_[static_cast<std::size_t>(j)] = value;
    }

    /** Number of elements offered so far. */
    std::uint64_t seen() const { return seen_; }

    /** The retained sample (unordered). */
    const std::vector<T> &sample() const { return sample_; }

    /** Write capacity, PRNG state, seen count and the retained sample
     *  to @p sink; deserialize() restores the sampler exactly, so a
     *  resumed stream continues the same random sequence. */
    void
    serialize(snap::Sink &sink) const
    {
        sink.vu64(capacity_);
        sink.u64(state_);
        sink.vu64(seen_);
        sink.vu64(sample_.size());
        for (const T &v : sample_)
            put(sink, v);
    }

    void
    deserialize(snap::Source &source)
    {
        std::uint64_t capacity = source.vu64();
        std::uint64_t state = source.u64();
        std::uint64_t seen = source.vu64();
        std::uint64_t n = source.vu64();
        if (n > capacity)
            source.fail("Reservoir sample larger than capacity");
        if (n > source.remaining() / 8)
            source.fail("Reservoir sample count " + std::to_string(n) +
                        " exceeds the remaining payload");
        capacity_ = static_cast<std::size_t>(capacity);
        state_ = state ? state : 1;
        seen_ = seen;
        sample_.clear();
        sample_.reserve(capacity_);
        for (std::uint64_t i = 0; i < n; ++i)
            sample_.push_back(get(source));
    }

  private:
    static void
    put(snap::Sink &sink, const T &v)
    {
        if constexpr (std::is_floating_point_v<T>)
            sink.f64(static_cast<double>(v));
        else
            sink.u64(static_cast<std::uint64_t>(v));
    }

    static T
    get(snap::Source &source)
    {
        if constexpr (std::is_floating_point_v<T>)
            return static_cast<T>(source.f64());
        else
            return static_cast<T>(source.u64());
    }
    std::uint64_t
    nextRandom()
    {
        // xorshift64*: adequate speed/quality for sampling decisions.
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1DULL;
    }

    std::size_t capacity_;
    std::uint64_t seed_; //!< construction seed, restored by reset()
    std::uint64_t state_;
    std::uint64_t seen_ = 0;
    std::vector<T> sample_;
};

} // namespace cbs

#endif // CBS_STATS_RESERVOIR_H
