/**
 * @file
 * Reservoir: uniform reservoir sampling (Vitter's algorithm R).
 *
 * Keeps a fixed-size uniform sample of an unbounded stream; used to
 * bound memory for distributions where the paper plots all samples
 * (e.g., RAW/WAW elapsed-time CDFs at production scale).
 */

#ifndef CBS_STATS_RESERVOIR_H
#define CBS_STATS_RESERVOIR_H

#include <cstdint>
#include <vector>

namespace cbs {

template <typename T>
class Reservoir
{
  public:
    /**
     * @param capacity sample size to retain.
     * @param seed PRNG seed (deterministic sampling for reproducibility).
     */
    explicit Reservoir(std::size_t capacity, std::uint64_t seed = 42)
        : capacity_(capacity), state_(seed ? seed : 1)
    {
        sample_.reserve(capacity);
    }

    /** Offer one stream element. */
    void
    add(const T &value)
    {
        ++seen_;
        if (sample_.size() < capacity_) {
            sample_.push_back(value);
            return;
        }
        std::uint64_t j = nextRandom() % seen_;
        if (j < capacity_)
            sample_[static_cast<std::size_t>(j)] = value;
    }

    /** Number of elements offered so far. */
    std::uint64_t seen() const { return seen_; }

    /** The retained sample (unordered). */
    const std::vector<T> &sample() const { return sample_; }

  private:
    std::uint64_t
    nextRandom()
    {
        // xorshift64*: adequate speed/quality for sampling decisions.
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1DULL;
    }

    std::size_t capacity_;
    std::uint64_t state_;
    std::uint64_t seen_ = 0;
    std::vector<T> sample_;
};

} // namespace cbs

#endif // CBS_STATS_RESERVOIR_H
