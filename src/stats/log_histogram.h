/**
 * @file
 * LogHistogram: an HDR-histogram-style log-bucketed histogram.
 *
 * Values are binned into buckets whose width grows geometrically: each
 * power-of-two range is split into 2^sub_bits linear sub-buckets, giving
 * a bounded relative error of 2^-sub_bits across the whole range
 * [0, 2^63). This is the workhorse for duration- and size-valued
 * distributions (inter-arrival times, RAW/WAW times, update intervals,
 * request sizes), where exact storage of billions of samples is not an
 * option in production.
 */

#ifndef CBS_STATS_LOG_HISTOGRAM_H
#define CBS_STATS_LOG_HISTOGRAM_H

#include <cstdint>
#include <vector>

namespace cbs {

namespace snap {
class Sink;
class Source;
} // namespace snap

class LogHistogram
{
  public:
    /**
     * @param sub_bits log2 of the number of linear sub-buckets per
     *        power-of-two range; relative quantile error is 2^-sub_bits.
     */
    explicit LogHistogram(int sub_bits = 7);

    /** Record one non-negative value (with an optional multiplicity). */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Merge another histogram with identical sub_bits. */
    void merge(const LogHistogram &other);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    std::uint64_t minValue() const;
    std::uint64_t maxValue() const;
    double mean() const;

    /**
     * Value at quantile @p q in [0,1] (q=0.5 is the median). Returns a
     * representative value of the bucket containing the q-th sample.
     */
    std::uint64_t quantile(double q) const;

    /** Fraction of recorded values that are <= @p value. */
    double cdfAt(std::uint64_t value) const;

    /** Fraction of recorded values strictly below @p value. */
    double fractionBelow(std::uint64_t value) const;

    /**
     * Export a sampled CDF as (value, cumulative fraction) pairs, one
     * point per non-empty bucket — suitable for plotting.
     */
    std::vector<std::pair<std::uint64_t, double>> cdfSeries() const;

    /**
     * Write the full state (sub_bits, counters, non-empty buckets as
     * sorted index/count pairs) to @p sink; deserialize() restores it
     * exactly, replacing the current contents including sub_bits.
     */
    void serialize(snap::Sink &sink) const;
    void deserialize(snap::Source &source);

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketLow(std::size_t index) const;
    std::uint64_t bucketHigh(std::size_t index) const;
    /** Representative (midpoint) value of a bucket. */
    std::uint64_t bucketMid(std::size_t index) const;

    int sub_bits_;
    std::uint64_t sub_count_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
    std::vector<std::uint64_t> buckets_;
};

} // namespace cbs

#endif // CBS_STATS_LOG_HISTOGRAM_H
