#include "stats/boxplot.h"

#include <sstream>

#include "common/format.h"
#include "stats/exact_quantiles.h"

namespace cbs {

BoxplotSummary
BoxplotSummary::compute(const ExactQuantiles &samples)
{
    BoxplotSummary box;
    box.count = samples.count();
    if (box.count == 0)
        return box;
    box.q1 = samples.quantile(0.25);
    box.median = samples.quantile(0.50);
    box.q3 = samples.quantile(0.75);
    double lo_fence = box.q1 - 1.5 * box.iqr();
    double hi_fence = box.q3 + 1.5 * box.iqr();
    const auto &sorted = samples.sorted();
    box.whisker_lo = box.q1;
    box.whisker_hi = box.q3;
    bool have_lo = false;
    for (double v : sorted) {
        if (v < lo_fence || v > hi_fence) {
            box.outliers.push_back(v);
            continue;
        }
        if (!have_lo) {
            box.whisker_lo = v;
            have_lo = true;
        }
        box.whisker_hi = v;
    }
    return box;
}

std::string
BoxplotSummary::toString(int decimals) const
{
    std::ostringstream oss;
    oss << "[" << formatFixed(whisker_lo, decimals) << " | "
        << formatFixed(q1, decimals) << " "
        << formatFixed(median, decimals) << " "
        << formatFixed(q3, decimals) << " | "
        << formatFixed(whisker_hi, decimals) << "] (n=" << count << ", "
        << outliers.size() << " outliers)";
    return oss.str();
}

} // namespace cbs
