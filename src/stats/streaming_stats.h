/**
 * @file
 * Single-pass summary statistics (Welford's online algorithm).
 */

#ifndef CBS_STATS_STREAMING_STATS_H
#define CBS_STATS_STREAMING_STATS_H

#include <cstdint>
#include <limits>

namespace cbs {

namespace snap {
class Sink;
class Source;
} // namespace snap

/**
 * Accumulates count, sum, mean, variance, min, and max of a stream of
 * doubles in O(1) space using Welford's numerically-stable recurrence.
 */
class StreamingStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const StreamingStats &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    /** Mean of the observations; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance; 0 with fewer than two observations. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;
    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }
    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Write the six accumulators to @p sink; deserialize() restores
     *  them exactly. */
    void serialize(snap::Sink &sink) const;
    void deserialize(snap::Source &source);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace cbs

#endif // CBS_STATS_STREAMING_STATS_H
