#include "stats/exact_quantiles.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "snapshot/wire.h"

namespace cbs {

ExactQuantiles::ExactQuantiles(std::vector<double> values)
    : values_(std::move(values)), sorted_(false)
{
}

void
ExactQuantiles::add(double x)
{
    values_.push_back(x);
    sorted_ = false;
}

void
ExactQuantiles::merge(const ExactQuantiles &other)
{
    if (other.values_.empty())
        return;
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sorted_ = false;
}

void
ExactQuantiles::ensureSorted() const
{
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
}

double
ExactQuantiles::quantile(double q) const
{
    CBS_EXPECT(!values_.empty(), "quantile of an empty sample set");
    CBS_EXPECT(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: " << q);
    ensureSorted();
    if (values_.size() == 1)
        return values_[0];
    double h = q * static_cast<double>(values_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(h));
    std::size_t hi = std::min(lo + 1, values_.size() - 1);
    double frac = h - static_cast<double>(lo);
    return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double
ExactQuantiles::mean() const
{
    if (values_.empty())
        return 0.0;
    return std::accumulate(values_.begin(), values_.end(), 0.0) /
           static_cast<double>(values_.size());
}

double
ExactQuantiles::cdfAt(double x) const
{
    if (values_.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(values_.begin(), values_.end(), x);
    return static_cast<double>(it - values_.begin()) /
           static_cast<double>(values_.size());
}

const std::vector<double> &
ExactQuantiles::sorted() const
{
    ensureSorted();
    return values_;
}

void
ExactQuantiles::serialize(snap::Sink &sink) const
{
    sink.vu64(values_.size());
    for (double v : values_)
        sink.f64(v);
}

void
ExactQuantiles::deserialize(snap::Source &source)
{
    std::uint64_t n = source.vu64();
    // 8 bytes per value: reject counts the payload cannot hold before
    // reserving memory for them.
    if (n > source.remaining() / 8)
        source.fail("ExactQuantiles count " + std::to_string(n) +
                    " exceeds the remaining payload");
    values_.clear();
    values_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        values_.push_back(source.f64());
    sorted_ = std::is_sorted(values_.begin(), values_.end());
}

} // namespace cbs
