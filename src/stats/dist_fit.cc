#include "stats/dist_fit.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace cbs {
namespace {

constexpr double kHalfLog2Pi = 0.9189385332046727; // ln(2*pi)/2

/** Acklam's rational approximation of the inverse normal CDF. */
double
inverseNormalCdf(double p)
{
    CBS_EXPECT(p > 0.0 && p < 1.0, "quantile out of (0,1): " << p);
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;
    if (p < p_low) {
        double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= 1 - p_low) {
        double q = p - 0.5;
        double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
                 a[4]) * r + a[5]) * q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
                 b[4]) * r + 1);
    }
    double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

FittedDistribution
fitExponential(const std::vector<double> &x, double sum)
{
    double n = static_cast<double>(x.size());
    double lambda = n / sum;
    FittedDistribution fit;
    fit.family = FittedDistribution::Family::Exponential;
    fit.params = {lambda};
    fit.log_likelihood = n * std::log(lambda) - lambda * sum;
    fit.aic = 2.0 * 1 - 2.0 * fit.log_likelihood;
    return fit;
}

FittedDistribution
fitLogNormal(const std::vector<double> &x, double sum_log,
             double sum_log_sq)
{
    double n = static_cast<double>(x.size());
    double mu = sum_log / n;
    double var = std::max(sum_log_sq / n - mu * mu, 1e-18);
    double sigma = std::sqrt(var);
    FittedDistribution fit;
    fit.family = FittedDistribution::Family::LogNormal;
    fit.params = {mu, sigma};
    fit.log_likelihood =
        -sum_log - n * std::log(sigma) - n * kHalfLog2Pi - n / 2.0;
    fit.aic = 2.0 * 2 - 2.0 * fit.log_likelihood;
    return fit;
}

FittedDistribution
fitPareto(const std::vector<double> &x, double sum_log)
{
    double n = static_cast<double>(x.size());
    double x_min = *std::min_element(x.begin(), x.end());
    double denom = sum_log - n * std::log(x_min);
    double alpha = denom > 1e-12 ? n / denom : 1e6;
    FittedDistribution fit;
    fit.family = FittedDistribution::Family::Pareto;
    fit.params = {x_min, alpha};
    fit.log_likelihood = n * std::log(alpha) +
                         n * alpha * std::log(x_min) -
                         (alpha + 1) * sum_log;
    fit.aic = 2.0 * 2 - 2.0 * fit.log_likelihood;
    return fit;
}

FittedDistribution
fitWeibull(const std::vector<double> &x, double sum_log)
{
    double n = static_cast<double>(x.size());
    double mean_log = sum_log / n;

    // Solve the profile-likelihood equation for the shape k by
    // bisection on g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x).
    auto g = [&](double k) {
        double sxk = 0;
        double sxk_log = 0;
        for (double v : x) {
            double xk = std::pow(v, k);
            sxk += xk;
            sxk_log += xk * std::log(v);
        }
        return sxk_log / sxk - 1.0 / k - mean_log;
    };
    double lo = 0.05;
    double hi = 20.0;
    double glo = g(lo);
    for (int iter = 0; iter < 80 && hi - lo > 1e-6; ++iter) {
        double mid = 0.5 * (lo + hi);
        double gm = g(mid);
        if ((gm < 0) == (glo < 0)) {
            lo = mid;
            glo = gm;
        } else {
            hi = mid;
        }
    }
    double k = 0.5 * (lo + hi);
    double sxk = 0;
    for (double v : x)
        sxk += std::pow(v, k);
    double lambda = std::pow(sxk / n, 1.0 / k);

    FittedDistribution fit;
    fit.family = FittedDistribution::Family::Weibull;
    fit.params = {k, lambda};
    double ll = n * std::log(k) - n * k * std::log(lambda) +
                (k - 1) * sum_log;
    for (double v : x)
        ll -= std::pow(v / lambda, k);
    fit.log_likelihood = ll;
    fit.aic = 2.0 * 2 - 2.0 * ll;
    return fit;
}

} // namespace

const char *
FittedDistribution::name() const
{
    switch (family) {
      case Family::Exponential:
        return "exponential";
      case Family::LogNormal:
        return "lognormal";
      case Family::Pareto:
        return "pareto";
      case Family::Weibull:
        return "weibull";
    }
    CBS_PANIC("unreachable family");
}

double
FittedDistribution::quantile(double q) const
{
    CBS_EXPECT(q > 0.0 && q < 1.0, "quantile out of (0,1): " << q);
    switch (family) {
      case Family::Exponential:
        return -std::log(1 - q) / params[0];
      case Family::LogNormal:
        return std::exp(params[0] + params[1] * inverseNormalCdf(q));
      case Family::Pareto:
        return params[0] * std::pow(1 - q, -1.0 / params[1]);
      case Family::Weibull:
        return params[1] * std::pow(-std::log(1 - q), 1.0 / params[0]);
    }
    CBS_PANIC("unreachable family");
}

std::vector<FittedDistribution>
fitDistributions(const std::vector<double> &samples)
{
    CBS_EXPECT(samples.size() >= 8,
               "need at least 8 samples to fit, got " << samples.size());
    double sum = 0;
    double sum_log = 0;
    double sum_log_sq = 0;
    for (double v : samples) {
        CBS_EXPECT(v > 0, "samples must be strictly positive");
        sum += v;
        double lv = std::log(v);
        sum_log += lv;
        sum_log_sq += lv * lv;
    }

    std::vector<FittedDistribution> fits;
    fits.push_back(fitExponential(samples, sum));
    fits.push_back(fitLogNormal(samples, sum_log, sum_log_sq));
    fits.push_back(fitPareto(samples, sum_log));
    fits.push_back(fitWeibull(samples, sum_log));
    std::sort(fits.begin(), fits.end(),
              [](const FittedDistribution &a,
                 const FittedDistribution &b) { return a.aic < b.aic; });
    return fits;
}

} // namespace cbs
