/**
 * @file
 * BoxplotSummary: Tukey five-number summary with IQR outlier detection,
 * matching the boxplot figures in the paper (Figs. 7, 11, 16, 17, 18).
 */

#ifndef CBS_STATS_BOXPLOT_H
#define CBS_STATS_BOXPLOT_H

#include <cstddef>
#include <string>
#include <vector>

namespace cbs {

class ExactQuantiles;

/** The five-number summary plus outliers of one boxplot. */
struct BoxplotSummary
{
    double q1 = 0;        //!< 25th percentile
    double median = 0;    //!< 50th percentile
    double q3 = 0;        //!< 75th percentile
    double whisker_lo = 0; //!< smallest value >= q1 - 1.5*IQR
    double whisker_hi = 0; //!< largest value <= q3 + 1.5*IQR
    std::size_t count = 0;
    std::vector<double> outliers; //!< values outside the whiskers

    /** Interquartile range. */
    double iqr() const { return q3 - q1; }

    /** Compute the summary of a sample set. */
    static BoxplotSummary compute(const ExactQuantiles &samples);

    /** One-line rendering: "[lo | q1 med q3 | hi] (n=..., k outliers)". */
    std::string toString(int decimals = 2) const;
};

} // namespace cbs

#endif // CBS_STATS_BOXPLOT_H
