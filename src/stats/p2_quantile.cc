#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "snapshot/wire.h"

namespace cbs {

P2Quantile::P2Quantile(double q) : q_(q)
{
    CBS_EXPECT(q > 0.0 && q < 1.0, "P2Quantile requires q in (0,1)");
    reset();
}

void
P2Quantile::reset()
{
    count_ = 0;
    heights_ = {};
    positions_ = {1, 2, 3, 4, 5};
    desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
    increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
}

double
P2Quantile::parabolic(int i, double d) const
{
    double np = positions_[i + 1] - positions_[i];
    double nm = positions_[i] - positions_[i - 1];
    double hp = (heights_[i + 1] - heights_[i]) / np;
    double hm = (heights_[i] - heights_[i - 1]) / nm;
    return heights_[i] + d / (np + nm) * ((nm + d) * hp + (np - d) * hm);
}

double
P2Quantile::linear(int i, double d) const
{
    int j = i + static_cast<int>(d);
    return heights_[i] + d * (heights_[j] - heights_[i]) /
                             (positions_[j] - positions_[i]);
}

void
P2Quantile::add(double x)
{
    if (count_ < 5) {
        heights_[count_++] = x;
        if (count_ == 5)
            std::sort(heights_.begin(), heights_.end());
        return;
    }
    ++count_;

    int k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1])
            ++k;
    }

    for (int i = k + 1; i < 5; ++i)
        positions_[i] += 1;
    for (int i = 0; i < 5; ++i)
        desired_[i] += increments_[i];

    for (int i = 1; i <= 3; ++i) {
        double d = desired_[i] - positions_[i];
        if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
            (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
            double sign = d >= 0 ? 1.0 : -1.0;
            double h = parabolic(i, sign);
            if (heights_[i - 1] < h && h < heights_[i + 1])
                heights_[i] = h;
            else
                heights_[i] = linear(i, sign);
            positions_[i] += sign;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ < 5) {
        // Exact small-sample quantile (nearest rank) over the sorted
        // prefix of markers.
        std::array<double, 5> sorted = heights_;
        std::sort(sorted.begin(), sorted.begin() + count_);
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q_ * static_cast<double>(count_)));
        rank = std::clamp<std::size_t>(rank, 1, count_);
        return sorted[rank - 1];
    }
    return heights_[2];
}

void
P2Quantile::serialize(snap::Sink &sink) const
{
    sink.f64(q_);
    sink.vu64(count_);
    for (const auto &arr :
         {heights_, positions_, desired_, increments_})
        for (double v : arr)
            sink.f64(v);
}

void
P2Quantile::deserialize(snap::Source &source)
{
    double q = source.f64();
    if (!(q > 0.0 && q < 1.0))
        source.fail("P2Quantile target quantile out of (0,1)");
    q_ = q;
    count_ = source.vu64();
    for (auto *arr : {&heights_, &positions_, &desired_, &increments_})
        for (double &v : *arr)
            v = source.f64();
}

} // namespace cbs
