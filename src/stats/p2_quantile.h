/**
 * @file
 * P2Quantile: the P-squared (P²) streaming quantile estimator of Jain and
 * Chlamtac (1985). Estimates a single quantile in O(1) space with five
 * markers and parabolic interpolation; useful where even a log-bucketed
 * histogram is too heavy (e.g., one estimator per block population).
 */

#ifndef CBS_STATS_P2_QUANTILE_H
#define CBS_STATS_P2_QUANTILE_H

#include <array>
#include <cstdint>

namespace cbs {

namespace snap {
class Sink;
class Source;
} // namespace snap

class P2Quantile
{
  public:
    /** @param q the quantile to estimate, in (0,1). */
    explicit P2Quantile(double q);

    /** Add one observation. */
    void add(double x);

    /** Return to the freshly-constructed state (same target quantile,
     *  no observations). Windowed consumers recycle one estimator per
     *  window instead of reallocating. */
    void reset();

    /** Current estimate; exact until five observations have been seen. */
    double value() const;

    std::uint64_t count() const { return count_; }

    /** Write the five markers and counters to @p sink; deserialize()
     *  restores the estimator exactly, including the target quantile. */
    void serialize(snap::Sink &sink) const;
    void deserialize(snap::Source &source);

  private:
    double parabolic(int i, double d) const;
    double linear(int i, double d) const;

    double q_;
    std::uint64_t count_ = 0;
    std::array<double, 5> heights_{};   // marker heights
    std::array<double, 5> positions_{}; // actual marker positions
    std::array<double, 5> desired_{};   // desired marker positions
    std::array<double, 5> increments_{};
};

} // namespace cbs

#endif // CBS_STATS_P2_QUANTILE_H
