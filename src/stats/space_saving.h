/**
 * @file
 * SpaceSaving: the space-saving heavy-hitter sketch (Metwally et al.,
 * 2005). Tracks the approximately-most-frequent keys of a stream in
 * bounded memory; used for traffic-hotspot identification when the exact
 * per-block tally would not fit (production-scale working sets).
 */

#ifndef CBS_STATS_SPACE_SAVING_H
#define CBS_STATS_SPACE_SAVING_H

#include <algorithm>
#include <cstdint>
#include <list>
#include <vector>

#include "common/error.h"
#include "common/flat_map.h"

namespace cbs {

namespace snap {
class Sink;
class Source;
} // namespace snap

class SpaceSaving
{
  public:
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t count = 0;     //!< estimated count (upper bound)
        std::uint64_t overcount = 0; //!< max estimation error
    };

    /** @param capacity maximum number of tracked keys. */
    explicit SpaceSaving(std::size_t capacity);

    /** Record one occurrence of @p key with weight @p weight. */
    void add(std::uint64_t key, std::uint64_t weight = 1);

    /** Return to the freshly-constructed state (same capacity, no
     *  tracked keys, zero total weight). */
    void reset();

    /** Total weight added to the sketch. */
    std::uint64_t totalWeight() const { return total_; }

    /** Number of tracked keys. */
    std::size_t trackedCount() const { return entries_.size(); }

    /**
     * Tracked entries sorted by estimated count, descending. An entry
     * whose (count - overcount) exceeds all others' counts is a
     * guaranteed heavy hitter.
     */
    std::vector<Entry> topK(std::size_t k) const;

    /** Estimated count for @p key (0 if untracked). */
    std::uint64_t estimate(std::uint64_t key) const;

    /** Write capacity, total weight and the tracked entries to
     *  @p sink; deserialize() restores the sketch exactly (the key
     *  index is rebuilt from the entries). */
    void serialize(snap::Sink &sink) const;
    void deserialize(snap::Source &source);

  private:
    std::size_t capacity_;
    std::uint64_t total_ = 0;
    std::vector<Entry> entries_;
    // key -> index into entries_
    FlatMap<std::uint32_t> index_;
};

} // namespace cbs

#endif // CBS_STATS_SPACE_SAVING_H
