/**
 * @file
 * ExactQuantiles: exact quantiles over a stored sample set.
 *
 * Per-volume metric sets (one value per volume: burstiness ratio,
 * randomness ratio, update coverage, ...) are small — at most a few
 * thousand entries — so the per-volume distribution figures use exact
 * quantiles rather than sketches.
 */

#ifndef CBS_STATS_EXACT_QUANTILES_H
#define CBS_STATS_EXACT_QUANTILES_H

#include <cstddef>
#include <vector>

namespace cbs {

namespace snap {
class Sink;
class Source;
} // namespace snap

class ExactQuantiles
{
  public:
    ExactQuantiles() = default;
    explicit ExactQuantiles(std::vector<double> values);

    /** Add one observation. */
    void add(double x);

    /** Append all of @p other's observations (shard merge). */
    void merge(const ExactQuantiles &other);

    std::size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    /**
     * Exact value at quantile @p q in [0,1], linearly interpolated
     * between order statistics (the "type 7" definition used by R and
     * NumPy). Lazily sorts the stored values.
     */
    double quantile(double q) const;

    double median() const { return quantile(0.5); }
    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }
    double mean() const;

    /** Fraction of observations <= @p x. */
    double cdfAt(double x) const;

    /** Fraction of observations > @p x. */
    double fractionAbove(double x) const { return 1.0 - cdfAt(x); }

    /** Sorted copy of the observations. */
    const std::vector<double> &sorted() const;

    /**
     * Write the observations (in stored order) to @p sink;
     * deserialize() replaces the current contents with them.
     */
    void serialize(snap::Sink &sink) const;
    void deserialize(snap::Source &source);

  private:
    void ensureSorted() const;

    mutable std::vector<double> values_;
    mutable bool sorted_ = true;
};

} // namespace cbs

#endif // CBS_STATS_EXACT_QUANTILES_H
