/**
 * @file
 * Series printing helpers: compact textual renderings of the CDF and
 * boxplot series behind the paper's figures.
 */

#ifndef CBS_REPORT_SERIES_H
#define CBS_REPORT_SERIES_H

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "stats/boxplot.h"
#include "stats/ecdf.h"
#include "stats/log_histogram.h"

namespace cbs {

/**
 * Print CDF points of @p cdf at the given cumulative fractions, with a
 * caller-supplied value formatter.
 */
inline void
printCdfQuantiles(const std::string &label, const Ecdf &cdf,
                  const std::vector<double> &fractions,
                  const std::function<std::string(double)> &fmt)
{
    std::printf("  %-28s", label.c_str());
    if (cdf.empty()) {
        std::printf(" (empty)\n");
        return;
    }
    for (double q : fractions)
        std::printf("  p%-3.0f=%-12s", q * 100,
                    fmt(cdf.quantile(q)).c_str());
    std::printf("\n");
}

/** Print the CDF of a LogHistogram at the given fractions. */
inline void
printHistQuantiles(const std::string &label, const LogHistogram &hist,
                   const std::vector<double> &fractions,
                   const std::function<std::string(double)> &fmt)
{
    std::printf("  %-28s", label.c_str());
    if (hist.empty()) {
        std::printf(" (empty)\n");
        return;
    }
    for (double q : fractions)
        std::printf("  p%-3.0f=%-12s", q * 100,
                    fmt(static_cast<double>(hist.quantile(q))).c_str());
    std::printf("\n");
}

/** Print one boxplot line. */
inline void
printBoxplot(const std::string &label, const BoxplotSummary &box,
             const std::function<std::string(double)> &fmt)
{
    std::printf("  %-28s  [%s | %s  %s  %s | %s]  n=%zu, outliers=%zu\n",
                label.c_str(), fmt(box.whisker_lo).c_str(),
                fmt(box.q1).c_str(), fmt(box.median).c_str(),
                fmt(box.q3).c_str(), fmt(box.whisker_hi).c_str(),
                box.count, box.outliers.size());
}

} // namespace cbs

#endif // CBS_REPORT_SERIES_H
