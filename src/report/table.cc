#include "report/table.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

TextTable &
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
    return *this;
}

TextTable &
TextTable::row(std::vector<std::string> cells)
{
    if (!header_.empty())
        CBS_EXPECT(cells.size() == header_.size(),
                   "row has " << cells.size() << " cells, header has "
                              << header_.size());
    rows_.push_back(Row{std::move(cells), false});
    return *this;
}

TextTable &
TextTable::separator()
{
    rows_.push_back(Row{{}, true});
    return *this;
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t columns = header_.size();
    for (const auto &row : rows_)
        columns = std::max(columns, row.cells.size());
    std::vector<std::size_t> widths(columns, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        if (!row.is_separator)
            widen(row.cells);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < columns; ++i) {
            const std::string cell =
                i < cells.size() ? cells[i] : std::string();
            os << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < columns)
                os << "  ";
        }
        os << '\n';
    };

    std::size_t total_width = 0;
    for (std::size_t w : widths)
        total_width += w;
    total_width += columns > 1 ? 2 * (columns - 1) : 0;

    if (!title_.empty()) {
        os << title_ << '\n';
        os << std::string(std::max(title_.size(),
                                   static_cast<std::size_t>(total_width)),
                          '=')
           << '\n';
    }
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total_width, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.is_separator)
            os << std::string(total_width, '-') << '\n';
        else
            emit(row.cells);
    }
}

} // namespace cbs
