/**
 * @file
 * Deterministic JSON emission helpers shared by the report writers
 * (cbs.summary.v1 in analysis/workload_summary.cc, cbs.compare.v1 in
 * app/compare.cc). The invariant the whole suite relies on: the same
 * values always print the same bytes, so identical analyzer state
 * dumps identical files regardless of thread count, batch size, or
 * dispatch mode.
 */

#ifndef CBS_REPORT_JSON_UTIL_H
#define CBS_REPORT_JSON_UTIL_H

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace cbs {
namespace jsonio {

/**
 * Shortest-round-trip double for JSON: the same double always prints
 * the same bytes. Non-finite values become null.
 */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, ptr - buf);
}

/** Minimal JSON string escaping (quotes, backslashes, control bytes)
 *  for paths, lane names, and error messages. */
inline void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/** {"count": N, "p25": x, "p50": x, "p90": x} or null when empty.
 *  Works for any sample store with count()/empty()/quantile()
 *  (Ecdf, ExactQuantiles). */
template <typename Dist>
void
jsonDist(std::ostream &os, const Dist &cdf)
{
    if (cdf.empty()) {
        os << "null";
        return;
    }
    os << "{\"count\": " << cdf.count() << ", \"p25\": ";
    jsonNumber(os, cdf.quantile(0.25));
    os << ", \"p50\": ";
    jsonNumber(os, cdf.quantile(0.5));
    os << ", \"p90\": ";
    jsonNumber(os, cdf.quantile(0.9));
    os << '}';
}

} // namespace jsonio
} // namespace cbs

#endif // CBS_REPORT_JSON_UTIL_H
