#include "report/workbench.h"

#include <cstdio>

#include "common/format.h"

namespace cbs {
namespace {

TraceBundle
build(std::string label, PopulationSpec spec, double paper_requests,
      std::uint64_t seed)
{
    TraceBundle bundle;
    bundle.label = std::move(label);
    bundle.profiles = sampleProfiles(spec, seed);
    bundle.source = makeTrace(bundle.profiles);
    bundle.count_scale = paper_requests / spec.total_request_target;
    bundle.spec = std::move(spec);
    return bundle;
}

} // namespace

TraceBundle
aliCloudSpan(SpanScale scale, std::uint64_t seed)
{
    return build("AliCloud", aliCloudSpanSpec(scale),
                 kAliCloudPaperRequests, seed);
}

TraceBundle
msrcSpan(SpanScale scale, std::uint64_t seed)
{
    return build("MSRC", msrcSpanSpec(scale), kMsrcPaperRequests, seed);
}

TraceBundle
aliCloudIntensity(std::uint64_t seed)
{
    PopulationSpec spec = aliCloudIntensitySpec();
    double target = spec.total_request_target;
    return build("AliCloud", std::move(spec),
                 target /* unscaled: paper-level rates */, seed);
}

TraceBundle
msrcIntensity(std::uint64_t seed)
{
    PopulationSpec spec = msrcIntensitySpec();
    double target = spec.total_request_target;
    return build("MSRC", std::move(spec), target, seed);
}

TraceBundle
aliCloudBurstiness(std::uint64_t seed)
{
    PopulationSpec spec = aliCloudBurstinessSpec();
    double target = spec.total_request_target;
    return build("AliCloud", std::move(spec), target, seed);
}

TraceBundle
msrcBurstiness(std::uint64_t seed)
{
    PopulationSpec spec = msrcBurstinessSpec();
    double target = spec.total_request_target;
    return build("MSRC", std::move(spec), target, seed);
}

void
printBenchHeader(const std::string &experiment, const std::string &notes)
{
    std::printf("################################################\n");
    std::printf("## %s\n", experiment.c_str());
    if (!notes.empty())
        std::printf("## %s\n", notes.c_str());
    std::printf("################################################\n\n");
}

void
printBundleInfo(const TraceBundle &bundle)
{
    std::printf("[trace] %s: %zu volumes, %.1f days, target %.2fM "
                "requests (count scale vs paper: %.0fx)\n",
                bundle.label.c_str(), bundle.spec.volume_count,
                static_cast<double>(bundle.spec.duration) /
                    static_cast<double>(units::day),
                bundle.spec.total_request_target / 1e6,
                bundle.count_scale);
}

} // namespace cbs
