/**
 * @file
 * TextTable: aligned plain-text tables for bench/report output.
 *
 * Every bench prints paper-reported values next to measured ones; this
 * keeps those tables readable in a terminal and diffable in CI logs.
 */

#ifndef CBS_REPORT_TABLE_H
#define CBS_REPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace cbs {

class TextTable
{
  public:
    /** @param title printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the column headers (fixes the column count). */
    TextTable &header(std::vector<std::string> cells);

    /** Append one row; must match the header's column count if set. */
    TextTable &row(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    TextTable &separator();

    /** Render with padded columns. */
    void print(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_separator = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace cbs

#endif // CBS_REPORT_TABLE_H
