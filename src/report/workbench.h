/**
 * @file
 * Workbench: shared bench scaffolding.
 *
 * Every bench binary regenerates one paper table/figure from the same
 * deterministic traces; the Workbench owns the calibrated population
 * specs, the fixed seed, and the count-scale factors that map measured
 * counts back to paper-equivalent magnitudes (DESIGN.md §5).
 */

#ifndef CBS_REPORT_WORKBENCH_H
#define CBS_REPORT_WORKBENCH_H

#include <memory>
#include <string>
#include <vector>

#include "synth/models.h"

namespace cbs {

/** One generated trace plus its provenance. */
struct TraceBundle
{
    std::string label;
    PopulationSpec spec;
    std::vector<VolumeProfile> profiles;
    std::unique_ptr<TraceSource> source;
    /** paper request count / generated request target. */
    double count_scale = 1.0;
};

/** Paper totals used for count-scale factors (Table I, in requests). */
constexpr double kAliCloudPaperRequests = 20.233e9;
constexpr double kMsrcPaperRequests = 433.8e6;

/** Build the full-duration AliCloud trace (31 days, scaled counts). */
TraceBundle aliCloudSpan(SpanScale scale = kAliCloudDefaultScale,
                         std::uint64_t seed = kBenchSeed);

/** Build the full-duration MSRC trace (7 days, scaled counts). */
TraceBundle msrcSpan(SpanScale scale = kMsrcDefaultScale,
                     std::uint64_t seed = kBenchSeed);

/** Build the short-window AliCloud trace at paper-level intensities. */
TraceBundle aliCloudIntensity(std::uint64_t seed = kBenchSeed);

/** Build the short-window MSRC trace at paper-level intensities. */
TraceBundle msrcIntensity(std::uint64_t seed = kBenchSeed);

/** Build the burstiness-calibrated day-long traces (Fig. 6). */
TraceBundle aliCloudBurstiness(std::uint64_t seed = kBenchSeed);
TraceBundle msrcBurstiness(std::uint64_t seed = kBenchSeed);

/** Standard bench preamble: what is being reproduced and from what. */
void printBenchHeader(const std::string &experiment,
                      const std::string &notes = "");

/** One-line provenance for a generated bundle. */
void printBundleInfo(const TraceBundle &bundle);

} // namespace cbs

#endif // CBS_REPORT_WORKBENCH_H
