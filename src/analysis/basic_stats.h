/**
 * @file
 * BasicStatsAnalyzer: the Table I statistics — request counts, traffic
 * volumes (read / written / updated), and working-set sizes (total /
 * read / write / update), plus the paper's derived §III-C ratios.
 *
 * "Updated" traffic is write traffic landing on blocks that have been
 * written before; the update WSS is the set of blocks written at least
 * twice. All sets are block-granular (see IoRequest::forEachBlock).
 */

#ifndef CBS_ANALYSIS_BASIC_STATS_H
#define CBS_ANALYSIS_BASIC_STATS_H

#include <cstdint>

#include "analysis/analyzer.h"
#include "analysis/block_state_map.h"
#include "analysis/per_volume.h"

namespace cbs {

/** Table I rows for one trace. */
struct BasicStats
{
    std::uint64_t volumes = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t update_bytes = 0;
    std::uint64_t total_wss_bytes = 0;
    std::uint64_t read_wss_bytes = 0;
    std::uint64_t write_wss_bytes = 0;
    std::uint64_t update_wss_bytes = 0;
    TimeUs first_timestamp = 0;
    TimeUs last_timestamp = 0;

    std::uint64_t requests() const { return reads + writes; }

    /** Overall write-to-read request ratio (writes per read). */
    double
    writeToReadRatio() const
    {
        return reads ? static_cast<double>(writes) /
                           static_cast<double>(reads)
                     : 0.0;
    }

    /** Fraction of the total WSS occupied by read blocks. */
    double
    readWssShare() const
    {
        return total_wss_bytes ? static_cast<double>(read_wss_bytes) /
                                     static_cast<double>(total_wss_bytes)
                               : 0.0;
    }

    /** Fraction of the total WSS occupied by written blocks. */
    double
    writeWssShare() const
    {
        return total_wss_bytes ? static_cast<double>(write_wss_bytes) /
                                     static_cast<double>(total_wss_bytes)
                               : 0.0;
    }
};

class BasicStatsAnalyzer : public ShardableAnalyzer
{
  public:
    explicit BasicStatsAnalyzer(
        std::uint64_t block_size = kDefaultBlockSize);

    void consume(const IoRequest &req) override;
    void consumeBatch(std::span<const IoRequest> batch) override;
    void consumeColumns(const RequestBatch &batch) override;
    std::string name() const override { return "basic_stats"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    const BasicStats &stats() const { return stats_; }

  private:
    // Per-block touch flags, packed in one byte.
    static constexpr std::uint8_t kRead = 1;
    static constexpr std::uint8_t kWritten = 2;
    static constexpr std::uint8_t kUpdated = 4;

    std::uint64_t block_size_;
    BasicStats stats_;
    BlockStateMap<std::uint8_t> blocks_;
    PerVolume<std::uint8_t> seen_volume_;
    bool any_ = false;
};

} // namespace cbs

#endif // CBS_ANALYSIS_BASIC_STATS_H
