/**
 * @file
 * ActiveDaysAnalyzer and WriteReadRatioAnalyzer: the per-volume
 * activity and op-mix statistics of §III-C (Figs. 3 and 4).
 */

#ifndef CBS_ANALYSIS_VOLUME_ACTIVITY_H
#define CBS_ANALYSIS_VOLUME_ACTIVITY_H

#include <cstdint>

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "stats/ecdf.h"

namespace cbs {

/**
 * Counts each volume's active days — a volume is active on a day if it
 * receives at least one request that day (Fig. 3). Per-volume day
 * bitmaps OR together, so the analyzer shards exactly under any
 * request partition, not just volume-disjoint ones.
 */
class ActiveDaysAnalyzer : public ShardableAnalyzer
{
  public:
    void consume(const IoRequest &req) override;
    void finalize() override;
    std::string name() const override { return "active_days"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** CDF of active-day counts across volumes. */
    const Ecdf &activeDays() const { return cdf_; }

    /** Fraction of volumes active on exactly @p days days. */
    double fractionWithDays(int days) const;

  private:
    PerVolume<std::uint64_t> day_bits_; //!< bit d set = active on day d
    Ecdf cdf_;
};

/**
 * Per-volume write-to-read request ratios (Fig. 4). Read-free volumes
 * are assigned the configured ratio cap, matching how the paper's CDF
 * saturates at very high ratios. Counters sum, so the analyzer shards
 * exactly under any request partition.
 */
class WriteReadRatioAnalyzer : public ShardableAnalyzer
{
  public:
    explicit WriteReadRatioAnalyzer(double ratio_cap = 1e4);

    void consume(const IoRequest &req) override;
    void finalize() override;
    std::string name() const override { return "wr_ratio"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** CDF of per-volume write-to-read ratios. */
    const Ecdf &ratios() const { return cdf_; }

    /** Fraction of volumes with ratio > @p threshold. */
    double fractionAbove(double threshold) const;

    std::uint64_t totalReads() const { return total_reads_; }
    std::uint64_t totalWrites() const { return total_writes_; }

  private:
    struct Counts
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    double ratio_cap_;
    PerVolume<Counts> counts_;
    Ecdf cdf_;
    std::uint64_t total_reads_ = 0;
    std::uint64_t total_writes_ = 0;
};

} // namespace cbs

#endif // CBS_ANALYSIS_VOLUME_ACTIVITY_H
