/**
 * @file
 * PerVolume: dense per-volume state storage.
 *
 * Volume ids are dense small integers in both trace formats (the MSRC
 * reader densifies hostname/disk pairs), so per-volume analyzer state
 * lives in a vector grown on demand rather than a hash map.
 */

#ifndef CBS_ANALYSIS_PER_VOLUME_H
#define CBS_ANALYSIS_PER_VOLUME_H

#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "snapshot/wire.h"

namespace cbs {

template <typename T>
class PerVolume
{
  public:
    /** State for @p volume, default-constructed on first touch. */
    T &
    operator[](VolumeId volume)
    {
        if (volume >= data_.size())
            data_.resize(static_cast<std::size_t>(volume) + 1);
        return data_[volume];
    }

    /** State for @p volume; the id must have been touched already. */
    const T &
    at(VolumeId volume) const
    {
        CBS_EXPECT(volume < data_.size(),
                   "volume id " << volume << " out of range (have "
                                << data_.size() << " slots)");
        return data_[volume];
    }

    /** Number of volume slots (max touched id + 1). */
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    /** Invoke fn(volume_id, state) for every slot. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < data_.size(); ++i)
            fn(static_cast<VolumeId>(i), data_[i]);
    }

    /**
     * Slot-wise merge used by ShardableAnalyzer::mergeFrom: grows to
     * cover @p other, then calls fn(own_slot, other_slot) for every
     * slot @p other has. Untouched own slots are default-constructed,
     * so fn sees zeros on the receiving side for volumes only the
     * other shard analyzed.
     */
    template <typename Fn>
    void
    mergeFrom(const PerVolume &other, Fn &&fn)
    {
        if (other.data_.size() > data_.size())
            data_.resize(other.data_.size());
        for (std::size_t i = 0; i < other.data_.size(); ++i)
            fn(data_[i], other.data_[i]);
    }

    /**
     * Snapshot helper: slot count, then write_slot(sink, state) per
     * slot in volume-id order — already deterministic, storage is a
     * dense vector.
     */
    template <typename WriteSlot>
    void
    serialize(snap::Sink &sink, WriteSlot &&write_slot) const
    {
        sink.vu64(data_.size());
        for (const T &slot : data_)
            write_slot(sink, slot);
    }

    /** Restore a serialize()d map, replacing the current contents;
     *  read_slot(source, state) fills each default-constructed slot. */
    template <typename ReadSlot>
    void
    deserialize(snap::Source &source, ReadSlot &&read_slot)
    {
        std::uint64_t n = source.vu64();
        if (n > source.remaining())
            source.fail("per-volume slot count " + std::to_string(n) +
                        " exceeds the remaining payload");
        data_.clear();
        data_.resize(static_cast<std::size_t>(n));
        for (T &slot : data_)
            read_slot(source, slot);
    }

  private:
    std::vector<T> data_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_PER_VOLUME_H
