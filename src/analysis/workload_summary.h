/**
 * @file
 * WorkloadSummary: the one-call characterization facade.
 *
 * Bundles the full single-pass analyzer set (everything except the
 * two-pass cache simulation), runs a trace through it, and exposes the
 * individual analyzers for detailed queries plus a printed overview —
 * the programmatic equivalent of the paper's §III-C high-level
 * analysis.
 */

#ifndef CBS_ANALYSIS_WORKLOAD_SUMMARY_H
#define CBS_ANALYSIS_WORKLOAD_SUMMARY_H

#include <algorithm>
#include <ostream>
#include <vector>

#include "analysis/activeness.h"
#include "analysis/analyzer.h"
#include "analysis/basic_stats.h"
#include "analysis/block_traffic.h"
#include "analysis/interarrival.h"
#include "analysis/load_intensity.h"
#include "analysis/parallel_pipeline.h"
#include "analysis/randomness.h"
#include "analysis/size_stats.h"
#include "analysis/temporal_pairs.h"
#include "analysis/update_coverage.h"
#include "analysis/update_interval.h"
#include "analysis/volume_activity.h"

namespace cbs {

class CacheSimResults;

/** Knobs of the bundled analysis. */
struct WorkloadSummaryOptions
{
    std::uint64_t block_size = kDefaultBlockSize;
    /** Activeness interval (paper: 10 minutes). */
    TimeUs activeness_interval = 10 * units::minute;
    /** Trace duration for the activeness series; 0 = auto from data
     *  (requires a second pass, so pass the real duration if known). */
    TimeUs duration = 31 * units::day;
    /** Peak-intensity window (paper: 1 minute). */
    TimeUs peak_window = units::minute;
};

class WorkloadSummary
{
  public:
    explicit WorkloadSummary(const WorkloadSummaryOptions &options =
                                 WorkloadSummaryOptions{})
        : basic(options.block_size),
          intensity(options.peak_window),
          activeness(options.activeness_interval, options.duration),
          traffic(options.block_size),
          coverage(options.block_size),
          pairs(options.block_size),
          intervals(options.block_size),
          options_(options)
    {
    }

    /** Run the whole bundle (plus optional extra analyzers sharing
     *  the same pass) in one streaming sweep. @p metrics optionally
     *  records per-analyzer timings (see runPipeline). */
    void
    run(TraceSource &source, std::vector<Analyzer *> extra = {},
        obs::MetricsRegistry *metrics = nullptr)
    {
        runPipeline(source, analyzerSet(std::move(extra)), metrics);
    }

    /** Serial sweep with explicit pipeline tuning (batch size,
     *  columnar vs row dispatch). Results are identical to run() —
     *  the knobs trade only speed. */
    void
    run(TraceSource &source, const PipelineOptions &pipeline,
        std::vector<Analyzer *> extra = {})
    {
        runPipeline(source, analyzerSet(std::move(extra)), pipeline);
    }

    /** Same sweep, but sharded across worker threads; shardable
     *  analyzers run on per-shard replicas, the rest on the in-order
     *  lane, so results match the serial run() exactly. Attach a
     *  registry via @p parallel.metrics for per-shard stats. The
     *  returned status (also kept, see pipelineStatus()) reports
     *  degraded-mode lane failures. */
    PipelineRunStatus
    run(TraceSource &source, const ParallelOptions &parallel,
        std::vector<Analyzer *> extra = {})
    {
        pipeline_status_ = runPipelineParallel(
            source, analyzerSet(std::move(extra)), parallel);
        return pipeline_status_;
    }

    /** Status of the last parallel run() (default-constructed — no
     *  lanes — when only the serial overload ran). */
    const PipelineRunStatus &pipelineStatus() const
    {
        return pipeline_status_;
    }

    /**
     * Attach the results of a separately-run cache simulation — the
     * two-pass per-fraction engine or the single-pass MRC engine (the
     * one analysis this bundle does not host in its own sweep). When
     * set, print() and writeJson() gain a "cache_sim" section. Not
     * owned; must stay alive until the last reporting call. Pass
     * nullptr to detach.
     */
    void setCacheSim(const CacheSimResults *cache_sim)
    {
        cache_sim_ = cache_sim;
    }

    /** The attached cache simulation results, or nullptr. */
    const CacheSimResults *cacheSim() const { return cache_sim_; }

    /** Print a compact multi-section report. */
    void print(std::ostream &os) const;

    /**
     * Write the characterization as one JSON object (schema
     * cbs.summary.v1). Deterministic: identical analyzer results
     * produce byte-identical output — doubles are emitted in
     * shortest-round-trip form — so serial and parallel runs of the
     * same trace compare equal byte for byte. When the last run had
     * degraded mode enabled, a "pipeline" section reports per-lane
     * status; without degraded mode the output is unchanged, keeping
     * it byte-identical across thread counts.
     */
    void writeJson(std::ostream &os) const;

    const WorkloadSummaryOptions &options() const { return options_; }

    /**
     * The bundled shardable analyzers in their fixed bundle order —
     * the iteration order of snapshot serialization and merging.
     */
    std::vector<ShardableAnalyzer *> shardableAnalyzers()
    {
        return {&basic,     &sizes,      &days,       &ratios,
                &intensity, &interarrival, &activeness, &randomness,
                &traffic,   &coverage,   &pairs,      &intervals};
    }

    std::vector<const ShardableAnalyzer *> shardableAnalyzers() const
    {
        return {&basic,     &sizes,      &days,       &ratios,
                &intensity, &interarrival, &activeness, &randomness,
                &traffic,   &coverage,   &pairs,      &intervals};
    }

    /**
     * Merge another summary's pre-finalize analyzer state into this
     * one (pairwise ShardableAnalyzer::mergeFrom in bundle order).
     * Both sides must have been built with the same options and must
     * not be finalized yet. Exact when the two sides saw disjoint
     * volume sets (the sharding contract) or disjoint prefixes of one
     * trace (resume).
     */
    void mergeFrom(const WorkloadSummary &other)
    {
        auto mine = shardableAnalyzers();
        auto theirs = other.shardableAnalyzers();
        for (std::size_t i = 0; i < mine.size(); ++i)
            mine[i]->mergeFrom(*theirs[i]);
        options_.duration =
            std::max(options_.duration, other.options_.duration);
    }

    // The bundled analyzers, exposed for detailed queries.
    BasicStatsAnalyzer basic;
    SizeAnalyzer sizes;
    ActiveDaysAnalyzer days;
    WriteReadRatioAnalyzer ratios;
    LoadIntensityAnalyzer intensity;
    InterarrivalAnalyzer interarrival;
    ActivenessAnalyzer activeness;
    RandomnessAnalyzer randomness;
    BlockTrafficAnalyzer traffic;
    UpdateCoverageAnalyzer coverage;
    TemporalPairsAnalyzer pairs;
    UpdateIntervalAnalyzer intervals;

  private:
    std::vector<Analyzer *>
    analyzerSet(std::vector<Analyzer *> extra)
    {
        std::vector<Analyzer *> all = {
            &basic,      &sizes,   &days,     &ratios,
            &intensity,  &interarrival, &activeness, &randomness,
            &traffic,    &coverage, &pairs,   &intervals};
        all.insert(all.end(), extra.begin(), extra.end());
        return all;
    }

    WorkloadSummaryOptions options_;
    PipelineRunStatus pipeline_status_;
    const CacheSimResults *cache_sim_ = nullptr;
};

} // namespace cbs

#endif // CBS_ANALYSIS_WORKLOAD_SUMMARY_H
