/**
 * @file
 * RandomnessAnalyzer: I/O randomness ratios (Finding 8, Fig. 10).
 *
 * A request is *random* if the minimum distance between its offset and
 * the offsets of the previous 32 requests of the same volume exceeds a
 * threshold (128 KiB in the paper, following DiskAccel/ESX); the
 * randomness ratio of a volume is its fraction of random requests.
 */

#ifndef CBS_ANALYSIS_RANDOMNESS_H
#define CBS_ANALYSIS_RANDOMNESS_H

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "stats/ecdf.h"

namespace cbs {

class RandomnessAnalyzer : public ShardableAnalyzer
{
  public:
    /**
     * @param window number of preceding requests compared against
     *        (paper: 32).
     * @param threshold_bytes minimum-distance threshold (paper: 128 KiB).
     */
    explicit RandomnessAnalyzer(
        std::size_t window = 32,
        std::uint64_t threshold_bytes = 128 * units::KiB);

    void consume(const IoRequest &req) override;
    void finalize() override;
    std::string name() const override { return "randomness"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** CDF of per-volume randomness ratios (Fig. 10(a)). */
    const Ecdf &ratios() const { return cdf_; }

    /** (randomness ratio, traffic bytes) of the top-k traffic volumes
     *  (Fig. 10(b); paper plots the top 10). */
    std::vector<std::pair<double, std::uint64_t>>
    topTrafficVolumes(std::size_t k) const;

    /** Randomness ratio of one volume. */
    double volumeRatio(VolumeId volume) const;

  private:
    struct State
    {
        std::vector<ByteOffset> ring; //!< recent request offsets
        std::size_t ring_pos = 0;
        std::uint64_t random = 0;
        std::uint64_t total = 0;
        std::uint64_t traffic_bytes = 0;

        double
        ratio() const
        {
            return total ? static_cast<double>(random) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };

    std::size_t window_;
    std::uint64_t threshold_;
    PerVolume<State> states_;
    Ecdf cdf_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_RANDOMNESS_H
