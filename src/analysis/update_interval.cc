#include "analysis/update_interval.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

UpdateIntervalAnalyzer::UpdateIntervalAnalyzer(std::uint64_t block_size)
    : block_size_(block_size), global_(7)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
UpdateIntervalAnalyzer::consume(const IoRequest &req)
{
    if (!req.isWrite())
        return;
    forEachBlock(req, block_size_, [&](BlockNo block) {
        std::uint64_t &state = last_write_[blockKey(req.volume, block)];
        if (state != 0) {
            TimeUs prev = state - 1;
            CBS_EXPECT(req.timestamp >= prev,
                       "trace not timestamp-ordered");
            TimeUs interval = req.timestamp - prev;
            global_.add(interval);
            auto &hist = volume_hists_[req.volume];
            if (!hist)
                hist = std::make_unique<LogHistogram>(5);
            hist->add(interval);
        }
        state = req.timestamp + 1;
    });
}

std::unique_ptr<ShardableAnalyzer>
UpdateIntervalAnalyzer::clone() const
{
    return std::make_unique<UpdateIntervalAnalyzer>(block_size_);
}

void
UpdateIntervalAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<UpdateIntervalAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_,
               "cannot merge update_interval shards with different "
               "block sizes");
    global_.merge(other.global_);
    // Values are timestamp+1, so keep-max keeps the later write; with
    // volume-disjoint shards each key exists on one side only anyway.
    last_write_.mergeFrom(
        other.last_write_,
        [](std::uint64_t &own, const std::uint64_t &theirs) {
            own = std::max(own, theirs);
        });
    volume_hists_.mergeFrom(
        other.volume_hists_,
        [](std::unique_ptr<LogHistogram> &own,
           const std::unique_ptr<LogHistogram> &theirs) {
            if (!theirs)
                return;
            if (own)
                own->merge(*theirs);
            else
                own = std::make_unique<LogHistogram>(*theirs);
        });
}

void
UpdateIntervalAnalyzer::finalize()
{
    for (const auto &hist : volume_hists_) {
        if (!hist || hist->empty())
            continue;
        for (std::size_t i = 0; i < kPercentiles.size(); ++i)
            percentile_groups_[i].add(
                static_cast<double>(hist->quantile(kPercentiles[i])));

        double below_5m = hist->fractionBelow(kGroupBounds[0]);
        double below_30m = hist->fractionBelow(kGroupBounds[1]);
        double below_240m = hist->fractionBelow(kGroupBounds[2]);
        duration_groups_[0].add(below_5m);
        duration_groups_[1].add(below_30m - below_5m);
        duration_groups_[2].add(below_240m - below_30m);
        duration_groups_[3].add(1.0 - below_240m);
    }
}

} // namespace cbs
