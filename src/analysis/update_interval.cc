#include "analysis/update_interval.h"

#include "common/error.h"

namespace cbs {

UpdateIntervalAnalyzer::UpdateIntervalAnalyzer(std::uint64_t block_size)
    : block_size_(block_size), global_(7)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
UpdateIntervalAnalyzer::consume(const IoRequest &req)
{
    if (!req.isWrite())
        return;
    forEachBlock(req, block_size_, [&](BlockNo block) {
        std::uint64_t &state = last_write_[blockKey(req.volume, block)];
        if (state != 0) {
            TimeUs prev = state - 1;
            CBS_EXPECT(req.timestamp >= prev,
                       "trace not timestamp-ordered");
            TimeUs interval = req.timestamp - prev;
            global_.add(interval);
            auto &hist = volume_hists_[req.volume];
            if (!hist)
                hist = std::make_unique<LogHistogram>(5);
            hist->add(interval);
        }
        state = req.timestamp + 1;
    });
}

void
UpdateIntervalAnalyzer::finalize()
{
    for (const auto &hist : volume_hists_) {
        if (!hist || hist->empty())
            continue;
        for (std::size_t i = 0; i < kPercentiles.size(); ++i)
            percentile_groups_[i].add(
                static_cast<double>(hist->quantile(kPercentiles[i])));

        double below_5m = hist->fractionBelow(kGroupBounds[0]);
        double below_30m = hist->fractionBelow(kGroupBounds[1]);
        double below_240m = hist->fractionBelow(kGroupBounds[2]);
        duration_groups_[0].add(below_5m);
        duration_groups_[1].add(below_30m - below_5m);
        duration_groups_[2].add(below_240m - below_30m);
        duration_groups_[3].add(1.0 - below_240m);
    }
}

} // namespace cbs
