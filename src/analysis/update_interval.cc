#include "analysis/update_interval.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

UpdateIntervalAnalyzer::UpdateIntervalAnalyzer(std::uint64_t block_size)
    : block_size_(block_size), global_(7)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
UpdateIntervalAnalyzer::consume(const IoRequest &req)
{
    if (!req.isWrite())
        return;
    last_write_.forEachState(
        req.volume, req.firstBlock(block_size_),
        req.lastBlock(block_size_), [&](std::uint64_t &state) {
            if (state != 0) {
                TimeUs prev = state - 1;
                CBS_EXPECT(req.timestamp >= prev,
                           "trace not timestamp-ordered");
                TimeUs interval = req.timestamp - prev;
                global_.add(interval);
                auto &hist = volume_hists_[req.volume];
                if (!hist)
                    hist = std::make_unique<LogHistogram>(5);
                hist->add(interval);
            }
            state = req.timestamp + 1;
        });
}

void
UpdateIntervalAnalyzer::consumeColumns(const RequestBatch &batch)
{
    // Only writes matter here, so the kernel walks the write rows of
    // each volume run and probes the chunked last-write map once per
    // overlapped chunk. The run's volume histogram slot is hoisted out
    // of the row loop; the pointer is still created lazily so a run
    // with no repeat writes leaves the volume untouched, like the
    // scalar path (a null slot is invisible to finalize and merges
    // either way).
    const TimeUs *ts = batch.ts();
    const std::uint8_t *is_write = batch.isWrite();
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        std::unique_ptr<LogHistogram> &hist =
            volume_hists_[run.volume];
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            std::uint32_t i = order[k];
            if (!is_write[i])
                continue;
            last_write_.forEachState(
                run.volume, batch.firstBlockAt(i, block_size_),
                batch.lastBlockAt(i, block_size_),
                [&](std::uint64_t &state) {
                    std::uint64_t prev = state;
                    state = ts[i] + 1;
                    if (prev != 0) {
                        CBS_EXPECT(ts[i] >= prev - 1,
                                   "trace not timestamp-ordered");
                        TimeUs interval = ts[i] - (prev - 1);
                        global_.add(interval);
                        if (!hist)
                            hist =
                                std::make_unique<LogHistogram>(5);
                        hist->add(interval);
                    }
                });
        }
    }
}

std::unique_ptr<ShardableAnalyzer>
UpdateIntervalAnalyzer::clone() const
{
    return std::make_unique<UpdateIntervalAnalyzer>(block_size_);
}

void
UpdateIntervalAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<UpdateIntervalAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_,
               "cannot merge update_interval shards with different "
               "block sizes");
    global_.merge(other.global_);
    // Values are timestamp+1, so keep-max keeps the later write; with
    // volume-disjoint shards each key exists on one side only anyway.
    last_write_.mergeFrom(
        other.last_write_,
        [](std::uint64_t &own, const std::uint64_t &theirs) {
            own = std::max(own, theirs);
        });
    volume_hists_.mergeFrom(
        other.volume_hists_,
        [](std::unique_ptr<LogHistogram> &own,
           const std::unique_ptr<LogHistogram> &theirs) {
            if (!theirs)
                return;
            if (own)
                own->merge(*theirs);
            else
                own = std::make_unique<LogHistogram>(*theirs);
        });
}

void
UpdateIntervalAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(block_size_);
    global_.serialize(sink);
    // Per-block state is timestamp+1 — fixed-width, like temporal
    // pairs' packed word.
    last_write_.serialize(sink,
                          [](snap::Sink &s, const std::uint64_t &state) {
                              s.u64(state);
                          });
    volume_hists_.serialize(
        sink,
        [](snap::Sink &s, const std::unique_ptr<LogHistogram> &hist) {
            s.u8(hist ? 1 : 0);
            if (hist)
                hist->serialize(s);
        });
}

void
UpdateIntervalAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t block_size = source.vu64();
    CBS_EXPECT(block_size == block_size_,
               "update_interval snapshot block size "
                   << block_size << " != configured " << block_size_);
    global_.deserialize(source);
    last_write_.deserialize(source,
                            [](snap::Source &s, std::uint64_t &state) {
                                state = s.u64();
                            });
    volume_hists_.deserialize(
        source,
        [](snap::Source &s, std::unique_ptr<LogHistogram> &hist) {
            if (s.u8()) {
                hist = std::make_unique<LogHistogram>(5);
                hist->deserialize(s);
            } else {
                hist.reset();
            }
        });
    source.expectEnd();
}

void
UpdateIntervalAnalyzer::finalize()
{
    for (const auto &hist : volume_hists_) {
        if (!hist || hist->empty())
            continue;
        for (std::size_t i = 0; i < kPercentiles.size(); ++i)
            percentile_groups_[i].add(
                static_cast<double>(hist->quantile(kPercentiles[i])));

        double below_5m = hist->fractionBelow(kGroupBounds[0]);
        double below_30m = hist->fractionBelow(kGroupBounds[1]);
        double below_240m = hist->fractionBelow(kGroupBounds[2]);
        duration_groups_[0].add(below_5m);
        duration_groups_[1].add(below_30m - below_5m);
        duration_groups_[2].add(below_240m - below_30m);
        duration_groups_[3].add(1.0 - below_240m);
    }
}

} // namespace cbs
