/**
 * @file
 * VolumeClassifier: rule-based workload-archetype classification.
 *
 * The AliCloud traces do not record which application runs on a volume
 * (paper §III-B limitation); the paper repeatedly infers archetypes
 * from I/O behaviour ("backups or journaling tend to only write data",
 * "application-level read caches absorb reads"). This analyzer makes
 * that inference explicit: each volume is assigned an archetype from
 * its op mix, rewrite behaviour, and spatial pattern.
 *
 * Archetypes:
 *  - WriteOnlyLog: almost no reads, mostly one-touch sequential-ish
 *    writes (backup / journal / log shipping);
 *  - WriteHeavyUpdater: write-dominant with substantial overwrites
 *    (databases behind read caches — the paper's common case);
 *  - ReadMostly: read-dominant traffic (content serving, scans);
 *  - Mixed: balanced read/write interaction;
 *  - Idle: too few requests to classify.
 */

#ifndef CBS_ANALYSIS_VOLUME_CLASSES_H
#define CBS_ANALYSIS_VOLUME_CLASSES_H

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "common/flat_map.h"

namespace cbs {

enum class VolumeClass : std::uint8_t
{
    Idle = 0,
    WriteOnlyLog = 1,
    WriteHeavyUpdater = 2,
    ReadMostly = 3,
    Mixed = 4,
};

constexpr std::size_t kVolumeClassCount = 5;

/** Printable archetype name. */
const char *volumeClassName(VolumeClass cls);

/** Per-volume features the classification is based on. */
struct VolumeFeatures
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t written_blocks = 0;
    std::uint64_t updated_blocks = 0;
    std::uint64_t read_blocks = 0;

    std::uint64_t requests() const { return reads + writes; }

    double
    writeFraction() const
    {
        return requests() ? static_cast<double>(writes) / requests()
                          : 0.0;
    }

    /** Fraction of written blocks that were rewritten. */
    double
    rewriteFraction() const
    {
        return written_blocks ? static_cast<double>(updated_blocks) /
                                    static_cast<double>(written_blocks)
                              : 0.0;
    }
};

class VolumeClassifier : public Analyzer
{
  public:
    /**
     * @param min_requests volumes below this are classified Idle.
     * @param block_size block granularity for rewrite tracking.
     */
    explicit VolumeClassifier(std::uint64_t min_requests = 100,
                              std::uint64_t block_size =
                                  kDefaultBlockSize);

    void consume(const IoRequest &req) override;
    void finalize() override;
    std::string name() const override { return "volume_classes"; }

    /** Classification of one volume (Idle if untouched). */
    VolumeClass classOf(VolumeId volume) const;

    /** Number of volumes per archetype. */
    const std::array<std::uint32_t, kVolumeClassCount> &
    histogram() const
    {
        return histogram_;
    }

    /** Feature vector of one volume. */
    const VolumeFeatures &featuresOf(VolumeId volume) const;

    /** Classify a standalone feature vector (rule core; testable). */
    static VolumeClass classify(const VolumeFeatures &features,
                                std::uint64_t min_requests);

  private:
    std::uint64_t min_requests_;
    std::uint64_t block_size_;
    FlatMap<std::uint8_t> blocks_;
    PerVolume<VolumeFeatures> features_;
    PerVolume<VolumeClass> classes_;
    std::array<std::uint32_t, kVolumeClassCount> histogram_{};
};

} // namespace cbs

#endif // CBS_ANALYSIS_VOLUME_CLASSES_H
