#include "analysis/block_traffic.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace cbs {

BlockTrafficAnalyzer::BlockTrafficAnalyzer(std::uint64_t block_size,
                                           double mostly_threshold)
    : block_size_(block_size), mostly_threshold_(mostly_threshold)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
    CBS_EXPECT(mostly_threshold > 0.5 && mostly_threshold <= 1.0,
               "mostly threshold must be in (0.5, 1]");
}

void
BlockTrafficAnalyzer::consumeBatch(std::span<const IoRequest> batch)
{
    // One virtual call per batch; the qualified calls below devirtualize.
    for (const IoRequest &req : batch)
        BlockTrafficAnalyzer::consume(req);
}

void
BlockTrafficAnalyzer::consume(const IoRequest &req)
{
    forEachBlock(req, block_size_, [&](BlockNo block) {
        Traffic &traffic = blocks_[blockKey(req.volume, block)];
        if (req.isRead()) {
            ++traffic.read_units;
            ++total_read_units_;
        } else {
            ++traffic.write_units;
            ++total_write_units_;
        }
    });
}

std::unique_ptr<ShardableAnalyzer>
BlockTrafficAnalyzer::clone() const
{
    return std::make_unique<BlockTrafficAnalyzer>(block_size_,
                                                  mostly_threshold_);
}

void
BlockTrafficAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<BlockTrafficAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_ &&
                   other.mostly_threshold_ == mostly_threshold_,
               "cannot merge block_traffic shards with different "
               "configuration");
    // Everything else (top-share quantiles, mostly-block tallies) is
    // derived from blocks_ at finalize, so summing the raw tallies is
    // the whole merge.
    blocks_.mergeFrom(other.blocks_,
                      [](Traffic &own, const Traffic &theirs) {
                          own.read_units += theirs.read_units;
                          own.write_units += theirs.write_units;
                      });
    total_read_units_ += other.total_read_units_;
    total_write_units_ += other.total_write_units_;
}

void
BlockTrafficAnalyzer::finalize()
{
    // Group per-block tallies by volume.
    struct VolumeTallies
    {
        std::vector<std::uint64_t> read_units;
        std::vector<std::uint64_t> write_units;
        std::uint64_t reads_total = 0;
        std::uint64_t writes_total = 0;
        std::uint64_t reads_to_read_mostly = 0;
        std::uint64_t writes_to_write_mostly = 0;
    };
    PerVolume<VolumeTallies> volumes;

    blocks_.forEach([&](std::uint64_t key, const Traffic &traffic) {
        VolumeId volume = static_cast<VolumeId>(key >> 44);
        VolumeTallies &tallies = volumes[volume];
        std::uint64_t total = traffic.read_units + traffic.write_units;
        if (traffic.read_units) {
            tallies.read_units.push_back(traffic.read_units);
            tallies.reads_total += traffic.read_units;
        }
        if (traffic.write_units) {
            tallies.write_units.push_back(traffic.write_units);
            tallies.writes_total += traffic.write_units;
        }
        double share_threshold =
            mostly_threshold_ * static_cast<double>(total);
        if (static_cast<double>(traffic.read_units) > share_threshold) {
            tallies.reads_to_read_mostly += traffic.read_units;
            read_units_to_read_mostly_ += traffic.read_units;
        } else if (static_cast<double>(traffic.write_units) >
                   share_threshold) {
            tallies.writes_to_write_mostly += traffic.write_units;
            write_units_to_write_mostly_ += traffic.write_units;
        }
    });

    // Traffic share of the top ceil(1%) / ceil(10%) blocks per volume.
    auto top_share = [](std::vector<std::uint64_t> &units,
                        double fraction, std::uint64_t total) {
        if (units.empty() || total == 0)
            return 0.0;
        std::size_t k = static_cast<std::size_t>(
            std::max<double>(1.0, fraction * units.size()));
        k = std::min(k, units.size());
        std::nth_element(units.begin(), units.begin() + (k - 1),
                         units.end(), std::greater<>());
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < k; ++i)
            sum += units[i];
        return static_cast<double>(sum) / static_cast<double>(total);
    };

    for (VolumeTallies &tallies : volumes) {
        if (tallies.reads_total) {
            read_top_[0].add(top_share(tallies.read_units, 0.01,
                                       tallies.reads_total));
            read_top_[1].add(top_share(tallies.read_units, 0.10,
                                       tallies.reads_total));
            read_mostly_cdf_.add(
                static_cast<double>(tallies.reads_to_read_mostly) /
                static_cast<double>(tallies.reads_total));
        }
        if (tallies.writes_total) {
            write_top_[0].add(top_share(tallies.write_units, 0.01,
                                        tallies.writes_total));
            write_top_[1].add(top_share(tallies.write_units, 0.10,
                                        tallies.writes_total));
            write_mostly_cdf_.add(
                static_cast<double>(tallies.writes_to_write_mostly) /
                static_cast<double>(tallies.writes_total));
        }
    }
}

double
BlockTrafficAnalyzer::overallReadToReadMostly() const
{
    return total_read_units_
               ? static_cast<double>(read_units_to_read_mostly_) /
                     static_cast<double>(total_read_units_)
               : 0.0;
}

double
BlockTrafficAnalyzer::overallWriteToWriteMostly() const
{
    return total_write_units_
               ? static_cast<double>(write_units_to_write_mostly_) /
                     static_cast<double>(total_write_units_)
               : 0.0;
}

} // namespace cbs
