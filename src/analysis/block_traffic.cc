#include "analysis/block_traffic.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace cbs {

BlockTrafficAnalyzer::BlockTrafficAnalyzer(std::uint64_t block_size,
                                           double mostly_threshold)
    : block_size_(block_size), mostly_threshold_(mostly_threshold)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
    CBS_EXPECT(mostly_threshold > 0.5 && mostly_threshold <= 1.0,
               "mostly threshold must be in (0.5, 1]");
}

void
BlockTrafficAnalyzer::consumeBatch(std::span<const IoRequest> batch)
{
    // One virtual call per batch; the qualified calls below devirtualize.
    for (const IoRequest &req : batch)
        BlockTrafficAnalyzer::consume(req);
}

void
BlockTrafficAnalyzer::consume(const IoRequest &req)
{
    blocks_.forEachState(
        req.volume, req.firstBlock(block_size_),
        req.lastBlock(block_size_), [&](Traffic &traffic) {
            if (req.isRead()) {
                ++traffic.read_units;
                ++total_read_units_;
            } else {
                ++traffic.write_units;
                ++total_write_units_;
            }
        });
}

void
BlockTrafficAnalyzer::consumeColumns(const RequestBatch &batch)
{
    // Tallies are commutative, so the per-block increments can run
    // volume-major; the global unit totals fall out of the block
    // columns with plain arithmetic, one add per row.
    const std::uint8_t *is_write = batch.isWrite();
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            std::uint32_t i = order[k];
            BlockNo first = batch.firstBlockAt(i, block_size_);
            BlockNo last = batch.lastBlockAt(i, block_size_);
            std::uint64_t units = last - first + 1;
            if (is_write[i]) {
                total_write_units_ += units;
                blocks_.forEachState(run.volume, first, last,
                                     [](Traffic &traffic) {
                                         ++traffic.write_units;
                                     });
            } else {
                total_read_units_ += units;
                blocks_.forEachState(run.volume, first, last,
                                     [](Traffic &traffic) {
                                         ++traffic.read_units;
                                     });
            }
        }
    }
}

std::unique_ptr<ShardableAnalyzer>
BlockTrafficAnalyzer::clone() const
{
    return std::make_unique<BlockTrafficAnalyzer>(block_size_,
                                                  mostly_threshold_);
}

void
BlockTrafficAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<BlockTrafficAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_ &&
                   other.mostly_threshold_ == mostly_threshold_,
               "cannot merge block_traffic shards with different "
               "configuration");
    // Everything else (top-share quantiles, mostly-block tallies) is
    // derived from blocks_ at finalize, so summing the raw tallies is
    // the whole merge.
    blocks_.mergeFrom(other.blocks_,
                      [](Traffic &own, const Traffic &theirs) {
                          own.read_units += theirs.read_units;
                          own.write_units += theirs.write_units;
                      });
    total_read_units_ += other.total_read_units_;
    total_write_units_ += other.total_write_units_;
}

void
BlockTrafficAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(block_size_);
    sink.f64(mostly_threshold_);
    sink.vu64(total_read_units_);
    sink.vu64(total_write_units_);
    blocks_.serialize(sink, [](snap::Sink &s, const Traffic &traffic) {
        s.vu64(traffic.read_units);
        s.vu64(traffic.write_units);
    });
}

void
BlockTrafficAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t block_size = source.vu64();
    double mostly_threshold = source.f64();
    CBS_EXPECT(block_size == block_size_ &&
                   mostly_threshold == mostly_threshold_,
               "block_traffic snapshot configuration (block size "
                   << block_size << ", threshold " << mostly_threshold
                   << ") != configured (" << block_size_ << ", "
                   << mostly_threshold_ << ")");
    total_read_units_ = source.vu64();
    total_write_units_ = source.vu64();
    blocks_.deserialize(source, [](snap::Source &s, Traffic &traffic) {
        traffic.read_units = s.vu64();
        traffic.write_units = s.vu64();
    });
    source.expectEnd();
}

void
BlockTrafficAnalyzer::finalize()
{
    // Group per-block tallies by volume.
    struct VolumeTallies
    {
        std::vector<std::uint64_t> read_units;
        std::vector<std::uint64_t> write_units;
        std::uint64_t reads_total = 0;
        std::uint64_t writes_total = 0;
        std::uint64_t reads_to_read_mostly = 0;
        std::uint64_t writes_to_write_mostly = 0;
    };
    PerVolume<VolumeTallies> volumes;

    blocks_.forEach([&](VolumeId volume, BlockNo,
                        const Traffic &traffic) {
        std::uint64_t total = traffic.read_units + traffic.write_units;
        if (total == 0) // untouched state in a touched chunk
            return;
        VolumeTallies &tallies = volumes[volume];
        if (traffic.read_units) {
            tallies.read_units.push_back(traffic.read_units);
            tallies.reads_total += traffic.read_units;
        }
        if (traffic.write_units) {
            tallies.write_units.push_back(traffic.write_units);
            tallies.writes_total += traffic.write_units;
        }
        double share_threshold =
            mostly_threshold_ * static_cast<double>(total);
        if (static_cast<double>(traffic.read_units) > share_threshold) {
            tallies.reads_to_read_mostly += traffic.read_units;
            read_units_to_read_mostly_ += traffic.read_units;
        } else if (static_cast<double>(traffic.write_units) >
                   share_threshold) {
            tallies.writes_to_write_mostly += traffic.write_units;
            write_units_to_write_mostly_ += traffic.write_units;
        }
    });

    // Traffic share of the top ceil(1%) / ceil(10%) blocks per volume.
    auto top_share = [](std::vector<std::uint64_t> &units,
                        double fraction, std::uint64_t total) {
        if (units.empty() || total == 0)
            return 0.0;
        std::size_t k = static_cast<std::size_t>(
            std::max<double>(1.0, fraction * units.size()));
        k = std::min(k, units.size());
        std::nth_element(units.begin(), units.begin() + (k - 1),
                         units.end(), std::greater<>());
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < k; ++i)
            sum += units[i];
        return static_cast<double>(sum) / static_cast<double>(total);
    };

    for (VolumeTallies &tallies : volumes) {
        if (tallies.reads_total) {
            read_top_[0].add(top_share(tallies.read_units, 0.01,
                                       tallies.reads_total));
            read_top_[1].add(top_share(tallies.read_units, 0.10,
                                       tallies.reads_total));
            read_mostly_cdf_.add(
                static_cast<double>(tallies.reads_to_read_mostly) /
                static_cast<double>(tallies.reads_total));
        }
        if (tallies.writes_total) {
            write_top_[0].add(top_share(tallies.write_units, 0.01,
                                        tallies.writes_total));
            write_top_[1].add(top_share(tallies.write_units, 0.10,
                                        tallies.writes_total));
            write_mostly_cdf_.add(
                static_cast<double>(tallies.writes_to_write_mostly) /
                static_cast<double>(tallies.writes_total));
        }
    }
}

double
BlockTrafficAnalyzer::overallReadToReadMostly() const
{
    return total_read_units_
               ? static_cast<double>(read_units_to_read_mostly_) /
                     static_cast<double>(total_read_units_)
               : 0.0;
}

double
BlockTrafficAnalyzer::overallWriteToWriteMostly() const
{
    return total_write_units_
               ? static_cast<double>(write_units_to_write_mostly_) /
                     static_cast<double>(total_write_units_)
               : 0.0;
}

} // namespace cbs
