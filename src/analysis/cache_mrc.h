/**
 * @file
 * CacheMrcAnalyzer: the paper's per-volume cache study (Finding 15,
 * Fig. 18) in a **single pass** via Mattson stack distances, replacing
 * the two-pass per-fraction LRU simulation for the LRU policy.
 *
 * The stack-distance theorem: an LRU cache of capacity c hits exactly
 * the accesses whose stack distance is <= c. One streaming pass that
 * records each block access's distance (split by op) therefore yields
 * the LRU miss ratio at *every* capacity at once — and since a
 * volume's WSS is just its distinct-block count (known at the end of
 * the same pass), the paper's fraction-of-WSS cache sizes read
 * straight off the curve at finalize. No WSS pre-pass, no per-fraction
 * policy instances: the cost is one hash probe plus one O(log n)
 * Fenwick update per block access, independent of how many fractions
 * are reported.
 *
 * Exactness: at capacity floor(max(1, f * wss)) — the same formula the
 * two-pass SimPass uses — the hit count over the identical unified
 * (reads + writes) access stream equals the LRU simulation's, so the
 * per-volume miss ratios are the same integer divisions and the
 * reported doubles are bit-identical (the MrcParity suite enforces
 * this across formats, pipelines and batch sizes).
 *
 * The approximate mode swaps the exact tracker for SHARDS spatial
 * sampling (cache/shards.h), with an optional constant-memory budget;
 * distances are scaled to the full stream at record time using the
 * rate in effect for each access, so an adaptive threshold drop never
 * rescales history.
 *
 * A full ShardableAnalyzer: state is keyed per volume, so shard
 * replicas own disjoint trackers, mergeFrom moves them over, and
 * serialize/deserialize round-trips the pre-finalize state through
 * cbs.snapshot.v1.
 */

#ifndef CBS_ANALYSIS_CACHE_MRC_H
#define CBS_ANALYSIS_CACHE_MRC_H

#include <optional>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cache_results.h"
#include "analysis/per_volume.h"
#include "cache/cache_sim.h"
#include "cache/shards.h"

namespace cbs {

class CacheMrcAnalyzer final : public ShardableAnalyzer,
                               public CacheSimResults
{
  public:
    /**
     * @param size_fractions reported cache sizes as fractions of the
     *        volume WSS (paper: {0.01, 0.10}).
     * @param block_size block granularity.
     * @param shards_rate 0 = exact stack distances; in (0,1] = SHARDS
     *        spatial sampling at that rate ("mrc-shards").
     * @param shards_budget constant-memory cap on tracked blocks per
     *        volume (SHARDS only; 0 = fixed rate).
     */
    explicit CacheMrcAnalyzer(
        std::vector<double> size_fractions = {0.01, 0.10},
        std::uint64_t block_size = kDefaultBlockSize,
        double shards_rate = 0.0, std::size_t shards_budget = 0);

    /** The fixed log-spaced fraction grid of the reported curve. */
    static const std::vector<double> &curveGrid();

    // -- Analyzer --------------------------------------------------------
    void consume(const IoRequest &req) override;
    void consumeBatch(std::span<const IoRequest> batch) override;
    void consumeColumns(const RequestBatch &batch) override;
    void finalize() override;
    std::string name() const override { return "cache_mrc"; }

    // -- ShardableAnalyzer -----------------------------------------------
    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    // -- CacheSimResults -------------------------------------------------
    const std::string &policyName() const override { return policy_; }
    const char *modeName() const override
    {
        return exact() ? "mrc" : "mrc-shards";
    }
    std::uint64_t blockSize() const override { return block_size_; }
    std::size_t fractionCount() const override
    {
        return fractions_.size();
    }
    double fractionAt(std::size_t i) const override
    {
        return fractions_[i];
    }
    const ExactQuantiles &readMissRatios(std::size_t i) const override;
    const ExactQuantiles &writeMissRatios(std::size_t i) const override;
    std::size_t curvePointCount() const override
    {
        return curveGrid().size();
    }
    double curveFractionAt(std::size_t i) const override
    {
        return curveGrid()[i];
    }
    const ExactQuantiles *
    curveReadMissRatios(std::size_t i) const override
    {
        return &curve_read_[i];
    }
    const ExactQuantiles *
    curveWriteMissRatios(std::size_t i) const override
    {
        return &curve_write_[i];
    }

    bool exact() const { return shards_rate_ == 0.0; }
    double shardsRate() const { return shards_rate_; }
    std::size_t shardsBudget() const { return shards_budget_; }

  private:
    /**
     * One volume's tracker plus op-split distance accounting. The
     * histograms live here rather than in the tracker because the
     * paper reports read and write miss ratios separately while the
     * simulated cache is unified: the distance comes from the combined
     * stream, the tally goes to the op's histogram. Distances are in
     * full-stream blocks (SHARDS samples are scaled at record time).
     */
    struct VolumeMrc
    {
        bool init = false;
        std::optional<ReuseDistance> tracker;
        std::optional<ShardsReuseDistance> sampler;
        std::vector<std::uint64_t> read_hist;
        std::vector<std::uint64_t> write_hist;
        std::uint64_t read_cold = 0;
        std::uint64_t write_cold = 0;
        std::uint64_t reads = 0;  //!< read block accesses tallied
        std::uint64_t writes = 0; //!< write block accesses tallied
    };

    void initVolume(VolumeMrc &vm);
    void recordBlock(VolumeMrc &vm, bool is_write, BlockNo block);
    void recordRange(VolumeMrc &vm, bool is_write, BlockNo first,
                     BlockNo last);
    static void tally(VolumeMrc &vm, bool is_write,
                      std::uint64_t distance, std::uint64_t count);
    void harvestVolume(const VolumeMrc &vm);

    std::vector<double> fractions_;
    std::uint64_t block_size_;
    double shards_rate_;
    std::size_t shards_budget_;
    std::string policy_ = "lru";

    PerVolume<VolumeMrc> volumes_;
    std::vector<ExactQuantiles> read_ratios_;
    std::vector<ExactQuantiles> write_ratios_;
    std::vector<ExactQuantiles> curve_read_;
    std::vector<ExactQuantiles> curve_write_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_CACHE_MRC_H
