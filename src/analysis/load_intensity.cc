#include "analysis/load_intensity.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

LoadIntensityAnalyzer::LoadIntensityAnalyzer(TimeUs peak_window)
    : peak_window_(peak_window)
{
    CBS_EXPECT(peak_window > 0, "peak window must be positive");
}

void
LoadIntensityAnalyzer::bump(State &state, TimeUs timestamp)
{
    if (!state.touched) {
        state.touched = true;
        state.stats.first = timestamp;
    }
    state.stats.last = std::max(state.stats.last, timestamp);
    ++state.stats.requests;

    std::uint64_t window = timestamp / peak_window_;
    if (window != state.window_index || state.stats.requests == 1) {
        state.window_index = window;
        state.window_count = 0;
    }
    ++state.window_count;
    state.stats.peak_window_count =
        std::max(state.stats.peak_window_count, state.window_count);
}

void
LoadIntensityAnalyzer::consume(const IoRequest &req)
{
    bump(states_[req.volume], req.timestamp);
    bump(overall_state_, req.timestamp);
}

void
LoadIntensityAnalyzer::finalize()
{
    overall_ = overall_state_.stats;
    for (const State &state : states_) {
        if (!state.touched)
            continue;
        avg_cdf_.add(state.stats.avgIntensity());
        peak_cdf_.add(state.stats.peakIntensity(peak_window_));
        double ratio = state.stats.burstinessRatio(peak_window_);
        if (ratio > 0)
            burst_cdf_.add(ratio);
    }
}

std::vector<std::pair<VolumeId, IntensityStats>>
LoadIntensityAnalyzer::volumeStats() const
{
    std::vector<std::pair<VolumeId, IntensityStats>> out;
    states_.forEach([&](VolumeId id, const State &state) {
        if (state.touched)
            out.emplace_back(id, state.stats);
    });
    return out;
}

} // namespace cbs
