#include "analysis/load_intensity.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

LoadIntensityAnalyzer::LoadIntensityAnalyzer(TimeUs peak_window)
    : peak_window_(peak_window)
{
    CBS_EXPECT(peak_window > 0, "peak window must be positive");
}

void
LoadIntensityAnalyzer::bump(State &state, TimeUs timestamp)
{
    if (!state.touched) {
        state.touched = true;
        state.stats.first = timestamp;
    }
    state.stats.last = std::max(state.stats.last, timestamp);
    ++state.stats.requests;

    std::uint64_t window = timestamp / peak_window_;
    if (window != state.window_index || state.stats.requests == 1) {
        state.window_index = window;
        state.window_count = 0;
    }
    ++state.window_count;
    state.stats.peak_window_count =
        std::max(state.stats.peak_window_count, state.window_count);
}

void
LoadIntensityAnalyzer::bumpOverall(TimeUs timestamp)
{
    State &state = overall_state_;
    if (!state.touched) {
        state.touched = true;
        state.stats.first = timestamp;
    }
    state.stats.last = std::max(state.stats.last, timestamp);
    ++state.stats.requests;

    std::uint64_t window = timestamp / peak_window_;
    if (state.stats.requests == 1) {
        state.window_index = window;
        state.window_count = 0;
    } else if (window != state.window_index) {
        flushOverallWindow();
        state.window_index = window;
        state.window_count = 0;
    }
    ++state.window_count;
}

void
LoadIntensityAnalyzer::flushOverallWindow()
{
    if (overall_state_.window_count) {
        overall_windows_[overall_state_.window_index] +=
            overall_state_.window_count;
        overall_state_.window_count = 0;
    }
}

void
LoadIntensityAnalyzer::consume(const IoRequest &req)
{
    bump(states_[req.volume], req.timestamp);
    bumpOverall(req.timestamp);
}

std::unique_ptr<ShardableAnalyzer>
LoadIntensityAnalyzer::clone() const
{
    return std::make_unique<LoadIntensityAnalyzer>(peak_window_);
}

void
LoadIntensityAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<LoadIntensityAnalyzer>(shard);
    CBS_EXPECT(other.peak_window_ == peak_window_,
               "cannot merge load_intensity shards with different "
               "peak windows");
    states_.mergeFrom(other.states_, [](State &own, const State &theirs) {
        if (!theirs.touched)
            return;
        if (!own.touched) {
            own = theirs;
            return;
        }
        // Both sides saw this volume — only possible outside the
        // volume-disjoint sharding contract; combine conservatively.
        own.stats.first = std::min(own.stats.first, theirs.stats.first);
        own.stats.last = std::max(own.stats.last, theirs.stats.last);
        own.stats.requests += theirs.stats.requests;
        own.stats.peak_window_count = std::max(
            own.stats.peak_window_count, theirs.stats.peak_window_count);
    });

    if (other.overall_state_.touched) {
        State &state = overall_state_;
        if (!state.touched) {
            state.touched = true;
            state.stats.first = other.overall_state_.stats.first;
        } else {
            state.stats.first = std::min(state.stats.first,
                                         other.overall_state_.stats.first);
        }
        state.stats.last = std::max(state.stats.last,
                                    other.overall_state_.stats.last);
        state.stats.requests += other.overall_state_.stats.requests;
    }
    // Per-window counts sum exactly across shards; include the other
    // side's still-open window run.
    overall_windows_.mergeFrom(
        other.overall_windows_,
        [](std::uint64_t &own, const std::uint64_t &theirs) {
            own += theirs;
        });
    if (other.overall_state_.window_count)
        overall_windows_[other.overall_state_.window_index] +=
            other.overall_state_.window_count;
}

void
LoadIntensityAnalyzer::serialize(snap::Sink &sink) const
{
    auto writeState = [](snap::Sink &s, const State &state) {
        s.vu64(state.stats.requests);
        s.u64(state.stats.first);
        s.u64(state.stats.last);
        s.vu64(state.stats.peak_window_count);
        s.vu64(state.window_index);
        s.vu64(state.window_count);
        s.u8(state.touched ? 1 : 0);
    };
    sink.u64(peak_window_);
    states_.serialize(sink, writeState);
    writeState(sink, overall_state_);
    // FlatMap iteration order depends on hash layout; emit the window
    // counts sorted by window index for byte-stable snapshots.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
    windows.reserve(overall_windows_.size());
    overall_windows_.forEach(
        [&](std::uint64_t window, const std::uint64_t &count) {
            windows.emplace_back(window, count);
        });
    std::sort(windows.begin(), windows.end());
    sink.vu64(windows.size());
    for (const auto &[window, count] : windows) {
        sink.vu64(window);
        sink.vu64(count);
    }
}

void
LoadIntensityAnalyzer::deserialize(snap::Source &source)
{
    auto readState = [](snap::Source &s, State &state) {
        state.stats.requests = s.vu64();
        state.stats.first = s.u64();
        state.stats.last = s.u64();
        state.stats.peak_window_count = s.vu64();
        state.window_index = s.vu64();
        state.window_count = s.vu64();
        state.touched = s.u8() != 0;
    };
    TimeUs peak_window = source.u64();
    CBS_EXPECT(peak_window == peak_window_,
               "load_intensity snapshot peak window "
                   << peak_window << " us != configured "
                   << peak_window_ << " us");
    states_.deserialize(source, readState);
    readState(source, overall_state_);
    std::uint64_t n = source.vu64();
    if (n > source.remaining() / 2)
        source.fail("load_intensity window count " +
                    std::to_string(n) +
                    " exceeds the remaining payload");
    overall_windows_ = FlatMap<std::uint64_t>(
        static_cast<std::size_t>(n));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t window = source.vu64();
        if (i && window <= prev)
            source.fail("load_intensity window indices out of order");
        prev = window;
        overall_windows_[window] = source.vu64();
    }
    source.expectEnd();
}

void
LoadIntensityAnalyzer::finalize()
{
    flushOverallWindow();
    overall_ = overall_state_.stats;
    overall_.peak_window_count = 0;
    overall_windows_.forEach(
        [&](std::uint64_t, const std::uint64_t &count) {
            overall_.peak_window_count =
                std::max(overall_.peak_window_count, count);
        });
    for (const State &state : states_) {
        if (!state.touched)
            continue;
        avg_cdf_.add(state.stats.avgIntensity());
        peak_cdf_.add(state.stats.peakIntensity(peak_window_));
        double ratio = state.stats.burstinessRatio(peak_window_);
        if (ratio > 0)
            burst_cdf_.add(ratio);
    }
}

std::vector<std::pair<VolumeId, IntensityStats>>
LoadIntensityAnalyzer::volumeStats() const
{
    std::vector<std::pair<VolumeId, IntensityStats>> out;
    states_.forEach([&](VolumeId id, const State &state) {
        if (state.touched)
            out.emplace_back(id, state.stats);
    });
    return out;
}

} // namespace cbs
