/**
 * @file
 * BlockStateMap: per-block analyzer state stored one *chunk* of
 * consecutive blocks per hash slot.
 *
 * The per-block analyzers used to key a FlatMap by (volume, block),
 * which costs one hash probe — one random DRAM access — per touched
 * block. But block-storage requests touch *contiguous* block ranges
 * (the bench trace averages ~9 blocks per request), so per-block
 * keying turns one request into ~9 scattered cache misses that no
 * amount of prefetching fully hides (software-prefetch pipelining was
 * prototyped and measured slower: out-of-order cores already overlap
 * independent probes; see docs/performance.md).
 *
 * Storing 2^kChunkBits consecutive blocks' states inline in one slot
 * fixes the access pattern at the source: a request probes once per
 * chunk it overlaps (~1-2 probes instead of ~9) and then walks its
 * blocks' states sequentially within the slot. On the calibrated bench
 * trace this is ~3.7x faster than per-block keying for a u64-state map
 * and *shrinks* memory (fewer keys, no per-block slot overhead);
 * workloads with no spatial locality pay up to chunk-size times more
 * memory, the classic extent-layout trade.
 *
 * Semantics are unchanged from FlatMap keyed by blockKey(): a
 * default-constructed V means "never touched" (all per-block analyzer
 * states already reserve their zero value for exactly that), states of
 * different (volume, block) pairs never alias, and per-block update
 * order is preserved. Merges are element-wise, so shard merging works
 * as before.
 */

#ifndef CBS_ANALYSIS_BLOCK_STATE_MAP_H
#define CBS_ANALYSIS_BLOCK_STATE_MAP_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "snapshot/wire.h"
#include "trace/request.h"

namespace cbs {

/**
 * Chunked per-block state map.
 *
 * @tparam V per-block state; V{} must mean "never touched".
 * @tparam kChunkBits log2 of blocks per chunk. The default 16-block
 *         chunks keep slots between 24 bytes (u8 states) and 136 bytes
 *         (u64 states) — one to three cache lines.
 */
template <typename V, unsigned kChunkBits = 4>
class BlockStateMap
{
  public:
    static constexpr BlockNo kChunkBlocks = BlockNo{1} << kChunkBits;

    /** One chunk's states, dense by block index within the chunk. */
    struct Chunk
    {
        V states[kChunkBlocks] = {};
    };

    BlockStateMap() = default;

    /** The state of one block (its chunk is created when absent). */
    V &
    state(VolumeId volume, BlockNo block)
    {
        return map_[chunkKey(volume, block >> kChunkBits)]
            .states[block & kIndexMask];
    }

    /**
     * Visit the states of blocks [first, last] of @p volume in block
     * order — the per-request hot path: one hash probe per overlapped
     * chunk, then a sequential in-slot walk. @p fn takes (V &).
     */
    template <typename Fn>
    void
    forEachState(VolumeId volume, BlockNo first, BlockNo last, Fn &&fn)
    {
        for (BlockNo c = first >> kChunkBits; c <= (last >> kChunkBits);
             ++c) {
            Chunk &chunk = map_[chunkKey(volume, c)];
            BlockNo lo = std::max(first, c << kChunkBits);
            BlockNo hi = std::min(last, (c << kChunkBits) | kIndexMask);
            for (BlockNo b = lo; b <= hi; ++b)
                fn(chunk.states[b & kIndexMask]);
        }
    }

    /**
     * Visit every state in every touched chunk as fn(volume, block,
     * const V &), *including* never-touched states (V{}) sharing a
     * chunk with touched ones — callers must ignore V{}, which the
     * per-block analyzers' finalizers do naturally. Unspecified order.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        map_.forEach([&](std::uint64_t key, const Chunk &chunk) {
            VolumeId volume =
                static_cast<VolumeId>(key >> kChunkIndexBits);
            BlockNo base = (key & kChunkIndexMask) << kChunkBits;
            for (BlockNo i = 0; i < kChunkBlocks; ++i)
                fn(volume, base + i, chunk.states[i]);
        });
    }

    /**
     * Fold @p other into this map element-wise: fn(own_state,
     * other_state) for every block of every chunk @p other holds.
     * fn(V{}, theirs) must assign `theirs` (all analyzer merge lambdas
     * do), because chunks new to this side are copied wholesale.
     */
    template <typename Fn>
    void
    mergeFrom(const BlockStateMap &other, Fn &&fn)
    {
        map_.mergeFrom(other.map_,
                       [&](Chunk &own, const Chunk &theirs) {
                           for (BlockNo i = 0; i < kChunkBlocks; ++i)
                               fn(own.states[i], theirs.states[i]);
                       });
    }

    /** Number of resident chunks (sizing/diagnostics). */
    std::size_t chunkCount() const { return map_.size(); }

    /**
     * Snapshot helper: chunk count, then per chunk its key followed by
     * write_state(sink, state) for all kChunkBlocks states. Chunks are
     * emitted in ascending key order — FlatMap iteration order depends
     * on hash layout, so sorting here is what makes snapshot bytes
     * identical across runs and thread counts.
     */
    template <typename WriteState>
    void
    serialize(snap::Sink &sink, WriteState &&write_state) const
    {
        std::vector<std::uint64_t> keys;
        keys.reserve(map_.size());
        map_.forEach([&](std::uint64_t key, const Chunk &) {
            keys.push_back(key);
        });
        std::sort(keys.begin(), keys.end());
        sink.vu64(keys.size());
        for (std::uint64_t key : keys) {
            sink.vu64(key);
            const Chunk &chunk = *map_.find(key);
            for (BlockNo i = 0; i < kChunkBlocks; ++i)
                write_state(sink, chunk.states[i]);
        }
    }

    /** Restore a serialize()d map, replacing the current contents;
     *  read_state(source, state) fills each state in block order. */
    template <typename ReadState>
    void
    deserialize(snap::Source &source, ReadState &&read_state)
    {
        std::uint64_t n = source.vu64();
        // Each chunk costs at least 1 + kChunkBlocks bytes on the wire.
        if (n > source.remaining() / (1 + kChunkBlocks))
            source.fail("block-state chunk count " + std::to_string(n) +
                        " exceeds the remaining payload");
        map_ = FlatMap<Chunk>(static_cast<std::size_t>(n));
        std::uint64_t prev = 0;
        for (std::uint64_t k = 0; k < n; ++k) {
            std::uint64_t key = source.vu64();
            if (k && key <= prev)
                source.fail("block-state chunk keys out of order");
            prev = key;
            Chunk &chunk = map_[key];
            for (BlockNo i = 0; i < kChunkBlocks; ++i)
                read_state(source, chunk.states[i]);
        }
    }

  private:
    // The chunk index keeps blockKey()'s 44-bit block domain, minus
    // the bits that moved into the chunk.
    static constexpr unsigned kChunkIndexBits = 44 - kChunkBits;
    static constexpr std::uint64_t kChunkIndexMask =
        (std::uint64_t{1} << kChunkIndexBits) - 1;
    static constexpr std::uint64_t kIndexMask = kChunkBlocks - 1;

    static std::uint64_t
    chunkKey(VolumeId volume, BlockNo chunk)
    {
        return (std::uint64_t{volume} << kChunkIndexBits) |
               (chunk & kChunkIndexMask);
    }

    FlatMap<Chunk> map_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_BLOCK_STATE_MAP_H
