#include "analysis/randomness.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

RandomnessAnalyzer::RandomnessAnalyzer(std::size_t window,
                                       std::uint64_t threshold_bytes)
    : window_(window), threshold_(threshold_bytes)
{
    CBS_EXPECT(window > 0, "randomness window must be positive");
    CBS_EXPECT(threshold_bytes > 0, "threshold must be positive");
}

void
RandomnessAnalyzer::consume(const IoRequest &req)
{
    State &state = states_[req.volume];
    state.traffic_bytes += req.length;

    if (!state.ring.empty()) {
        std::uint64_t min_distance = ~std::uint64_t{0};
        for (ByteOffset prev : state.ring) {
            std::uint64_t distance = prev > req.offset
                                         ? prev - req.offset
                                         : req.offset - prev;
            min_distance = std::min(min_distance, distance);
        }
        ++state.total;
        if (min_distance > threshold_)
            ++state.random;
    }

    if (state.ring.size() < window_) {
        state.ring.push_back(req.offset);
    } else {
        state.ring[state.ring_pos] = req.offset;
        state.ring_pos = (state.ring_pos + 1) % window_;
    }
}

void
RandomnessAnalyzer::finalize()
{
    for (const State &state : states_) {
        if (state.total)
            cdf_.add(state.ratio());
    }
}

std::vector<std::pair<double, std::uint64_t>>
RandomnessAnalyzer::topTrafficVolumes(std::size_t k) const
{
    std::vector<const State *> touched;
    for (const State &state : states_) {
        if (state.total)
            touched.push_back(&state);
    }
    std::sort(touched.begin(), touched.end(),
              [](const State *a, const State *b) {
                  return a->traffic_bytes > b->traffic_bytes;
              });
    if (touched.size() > k)
        touched.resize(k);
    std::vector<std::pair<double, std::uint64_t>> out;
    out.reserve(touched.size());
    for (const State *state : touched)
        out.emplace_back(state->ratio(), state->traffic_bytes);
    return out;
}

double
RandomnessAnalyzer::volumeRatio(VolumeId volume) const
{
    if (volume >= states_.size())
        return 0.0;
    return states_.at(volume).ratio();
}

} // namespace cbs
