#include "analysis/randomness.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

RandomnessAnalyzer::RandomnessAnalyzer(std::size_t window,
                                       std::uint64_t threshold_bytes)
    : window_(window), threshold_(threshold_bytes)
{
    CBS_EXPECT(window > 0, "randomness window must be positive");
    CBS_EXPECT(threshold_bytes > 0, "threshold must be positive");
}

void
RandomnessAnalyzer::consume(const IoRequest &req)
{
    State &state = states_[req.volume];
    state.traffic_bytes += req.length;

    if (!state.ring.empty()) {
        std::uint64_t min_distance = ~std::uint64_t{0};
        for (ByteOffset prev : state.ring) {
            std::uint64_t distance = prev > req.offset
                                         ? prev - req.offset
                                         : req.offset - prev;
            min_distance = std::min(min_distance, distance);
        }
        ++state.total;
        if (min_distance > threshold_)
            ++state.random;
    }

    if (state.ring.size() < window_) {
        state.ring.push_back(req.offset);
    } else {
        state.ring[state.ring_pos] = req.offset;
        state.ring_pos = (state.ring_pos + 1) % window_;
    }
}

std::unique_ptr<ShardableAnalyzer>
RandomnessAnalyzer::clone() const
{
    return std::make_unique<RandomnessAnalyzer>(window_, threshold_);
}

void
RandomnessAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<RandomnessAnalyzer>(shard);
    CBS_EXPECT(other.window_ == window_ &&
                   other.threshold_ == threshold_,
               "cannot merge randomness shards with different "
               "window/threshold");
    states_.mergeFrom(other.states_, [](State &own, const State &theirs) {
        if (theirs.ring.empty() && !theirs.total)
            return;
        if (own.ring.empty() && !own.total) {
            own = theirs;
            return;
        }
        // Same volume on both sides (outside the volume-disjoint
        // contract): counters sum exactly, the offset ring keeps the
        // receiving side's history.
        own.random += theirs.random;
        own.total += theirs.total;
        own.traffic_bytes += theirs.traffic_bytes;
    });
}

void
RandomnessAnalyzer::finalize()
{
    for (const State &state : states_) {
        if (state.total)
            cdf_.add(state.ratio());
    }
}

std::vector<std::pair<double, std::uint64_t>>
RandomnessAnalyzer::topTrafficVolumes(std::size_t k) const
{
    std::vector<const State *> touched;
    for (const State &state : states_) {
        if (state.total)
            touched.push_back(&state);
    }
    std::sort(touched.begin(), touched.end(),
              [](const State *a, const State *b) {
                  return a->traffic_bytes > b->traffic_bytes;
              });
    if (touched.size() > k)
        touched.resize(k);
    std::vector<std::pair<double, std::uint64_t>> out;
    out.reserve(touched.size());
    for (const State *state : touched)
        out.emplace_back(state->ratio(), state->traffic_bytes);
    return out;
}

double
RandomnessAnalyzer::volumeRatio(VolumeId volume) const
{
    if (volume >= states_.size())
        return 0.0;
    return states_.at(volume).ratio();
}

} // namespace cbs
