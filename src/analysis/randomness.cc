#include "analysis/randomness.h"

#include <algorithm>

#include "common/error.h"

namespace cbs {

RandomnessAnalyzer::RandomnessAnalyzer(std::size_t window,
                                       std::uint64_t threshold_bytes)
    : window_(window), threshold_(threshold_bytes)
{
    CBS_EXPECT(window > 0, "randomness window must be positive");
    CBS_EXPECT(threshold_bytes > 0, "threshold must be positive");
}

void
RandomnessAnalyzer::consume(const IoRequest &req)
{
    State &state = states_[req.volume];
    state.traffic_bytes += req.length;

    if (!state.ring.empty()) {
        std::uint64_t min_distance = ~std::uint64_t{0};
        for (ByteOffset prev : state.ring) {
            std::uint64_t distance = prev > req.offset
                                         ? prev - req.offset
                                         : req.offset - prev;
            min_distance = std::min(min_distance, distance);
        }
        ++state.total;
        if (min_distance > threshold_)
            ++state.random;
    }

    if (state.ring.size() < window_) {
        state.ring.push_back(req.offset);
    } else {
        state.ring[state.ring_pos] = req.offset;
        state.ring_pos = (state.ring_pos + 1) % window_;
    }
}

std::unique_ptr<ShardableAnalyzer>
RandomnessAnalyzer::clone() const
{
    return std::make_unique<RandomnessAnalyzer>(window_, threshold_);
}

void
RandomnessAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<RandomnessAnalyzer>(shard);
    CBS_EXPECT(other.window_ == window_ &&
                   other.threshold_ == threshold_,
               "cannot merge randomness shards with different "
               "window/threshold");
    states_.mergeFrom(other.states_, [](State &own, const State &theirs) {
        if (theirs.ring.empty() && !theirs.total)
            return;
        if (own.ring.empty() && !own.total) {
            own = theirs;
            return;
        }
        // Same volume on both sides (outside the volume-disjoint
        // contract): counters sum exactly, the offset ring keeps the
        // receiving side's history.
        own.random += theirs.random;
        own.total += theirs.total;
        own.traffic_bytes += theirs.traffic_bytes;
    });
}

void
RandomnessAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(window_);
    sink.vu64(threshold_);
    states_.serialize(sink, [](snap::Sink &s, const State &state) {
        s.vu64(state.ring.size());
        for (ByteOffset offset : state.ring)
            s.u64(offset);
        s.vu64(state.ring_pos);
        s.vu64(state.random);
        s.vu64(state.total);
        s.vu64(state.traffic_bytes);
    });
}

void
RandomnessAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t window = source.vu64();
    std::uint64_t threshold = source.vu64();
    CBS_EXPECT(window == window_ && threshold == threshold_,
               "randomness snapshot window/threshold ("
                   << window << ", " << threshold
                   << ") != configured (" << window_ << ", "
                   << threshold_ << ")");
    std::size_t ring_cap = window_;
    states_.deserialize(source, [ring_cap](snap::Source &s,
                                           State &state) {
        std::uint64_t n = s.vu64();
        if (n > ring_cap)
            s.fail("randomness ring larger than the window");
        state.ring.clear();
        state.ring.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
            state.ring.push_back(s.u64());
        state.ring_pos = static_cast<std::size_t>(s.vu64());
        if (state.ring_pos >= ring_cap)
            s.fail("randomness ring position out of range");
        state.random = s.vu64();
        state.total = s.vu64();
        state.traffic_bytes = s.vu64();
    });
    source.expectEnd();
}

void
RandomnessAnalyzer::finalize()
{
    for (const State &state : states_) {
        if (state.total)
            cdf_.add(state.ratio());
    }
}

std::vector<std::pair<double, std::uint64_t>>
RandomnessAnalyzer::topTrafficVolumes(std::size_t k) const
{
    std::vector<const State *> touched;
    for (const State &state : states_) {
        if (state.total)
            touched.push_back(&state);
    }
    std::sort(touched.begin(), touched.end(),
              [](const State *a, const State *b) {
                  return a->traffic_bytes > b->traffic_bytes;
              });
    if (touched.size() > k)
        touched.resize(k);
    std::vector<std::pair<double, std::uint64_t>> out;
    out.reserve(touched.size());
    for (const State *state : touched)
        out.emplace_back(state->ratio(), state->traffic_bytes);
    return out;
}

double
RandomnessAnalyzer::volumeRatio(VolumeId volume) const
{
    if (volume >= states_.size())
        return 0.0;
    return states_.at(volume).ratio();
}

} // namespace cbs
