/**
 * @file
 * ActivenessAnalyzer: interval-level volume activeness (Findings 5-7;
 * Figs. 8 and 9).
 *
 * The trace is split into fixed intervals (10 minutes in the paper;
 * configurable for scaled traces). A volume is active / read-active /
 * write-active in an interval if it receives at least one request /
 * read / write there. The analyzer produces the per-interval active
 * volume counts (Fig. 8) and the per-volume active-period totals
 * (Fig. 9) for the three activity kinds.
 */

#ifndef CBS_ANALYSIS_ACTIVENESS_H
#define CBS_ANALYSIS_ACTIVENESS_H

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "stats/ecdf.h"

namespace cbs {

class ActivenessAnalyzer : public ShardableAnalyzer
{
  public:
    enum Kind : std::size_t
    {
        kActive = 0,
        kReadActive = 1,
        kWriteActive = 2,
    };

    /**
     * @param interval interval length (paper: 10 minutes).
     * @param duration total trace duration (defines interval count).
     */
    ActivenessAnalyzer(TimeUs interval, TimeUs duration);

    void consume(const IoRequest &req) override;
    void finalize() override;
    std::string name() const override { return "activeness"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    TimeUs interval() const { return interval_; }
    std::size_t intervalCount() const { return interval_count_; }

    /**
     * Number of volumes of the given kind active per interval.
     * Computed by finalize() from the per-volume interval bitmaps
     * (kept out of the consume hot path so the bitmaps alone are the
     * analyzer's mergeable, serializable state).
     */
    const std::vector<std::uint32_t> &
    seriesOf(Kind kind) const
    {
        return series_[kind];
    }

    /**
     * CDF of per-volume active time (in intervals) for the given kind,
     * over all touched volumes (Fig. 9).
     */
    const Ecdf &
    activePeriods(Kind kind) const
    {
        return periods_[kind];
    }

    /**
     * Fraction of volumes whose active period of @p kind covers at
     * least @p fraction of the whole trace.
     */
    double fractionActiveAtLeast(Kind kind, double fraction) const;

  private:
    struct Bits
    {
        std::vector<std::uint64_t> words;

        /** @return true when the bit was newly set. */
        bool set(std::size_t idx);
        /** OR @p other's bits into this bitmap (shard merge). */
        void merge(const Bits &other);
        std::size_t popcount() const;
        bool any() const { return !words.empty(); }
    };

    struct State
    {
        std::array<Bits, 3> bits;
    };

    TimeUs interval_;
    std::size_t interval_count_;
    PerVolume<State> states_;
    std::array<std::vector<std::uint32_t>, 3> series_;
    std::array<Ecdf, 3> periods_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_ACTIVENESS_H
