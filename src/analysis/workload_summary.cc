#include "analysis/workload_summary.h"

#include "common/format.h"
#include "report/table.h"

namespace cbs {

void
WorkloadSummary::print(std::ostream &os) const
{
    const BasicStats &s = basic.stats();

    TextTable overview("Workload overview");
    overview.header({"metric", "value"});
    overview.row({"volumes", formatCount(s.volumes)});
    overview.row({"requests", formatCount(s.requests())});
    overview.row(
        {"duration",
         formatDurationUs(static_cast<double>(s.last_timestamp -
                                              s.first_timestamp))});
    overview.row(
        {"write:read ratio", formatFixed(s.writeToReadRatio(), 2)});
    overview.row({"read traffic", formatBytes(s.read_bytes)});
    overview.row({"write traffic", formatBytes(s.write_bytes)});
    overview.row({"update traffic", formatBytes(s.update_bytes)});
    overview.row({"total WSS", formatBytes(s.total_wss_bytes)});
    overview.row({"read WSS share", formatPercent(s.readWssShare())});
    overview.row({"write WSS share", formatPercent(s.writeWssShare())});
    overview.print(os);
    os << '\n';

    TextTable dists("Per-volume distributions (median [p25, p90])");
    dists.header({"metric", "median", "p25", "p90"});
    auto dist_row = [&](const char *name, const Ecdf &cdf,
                        auto fmt) {
        if (cdf.empty()) {
            dists.row({name, "-", "-", "-"});
            return;
        }
        dists.row({name, fmt(cdf.quantile(0.5)), fmt(cdf.quantile(0.25)),
                   fmt(cdf.quantile(0.9))});
    };
    auto pct = [](double v) { return formatPercent(v); };
    auto num = [](double v) { return formatFixed(v, 2); };
    auto kib = [](double v) {
        return formatBytes(static_cast<std::uint64_t>(v));
    };
    dist_row("avg read size", sizes.volumeAvgReadSizes(), kib);
    dist_row("avg write size", sizes.volumeAvgWriteSizes(), kib);
    dist_row("write:read ratio", ratios.ratios(), num);
    dist_row("avg intensity (req/s)", intensity.avgIntensities(), num);
    dist_row("burstiness ratio", intensity.burstinessRatios(), num);
    dist_row("randomness ratio", randomness.ratios(), pct);
    dist_row("update coverage", coverage.coverage(), pct);
    dist_row("reads to read-mostly", traffic.readMostlyShares(), pct);
    dist_row("writes to write-mostly", traffic.writeMostlyShares(),
             pct);
    dists.print(os);
    os << '\n';

    TextTable temporal("Temporal pairs");
    temporal.header({"kind", "count", "median gap"});
    for (PairKind kind : {PairKind::RAW, PairKind::WAW, PairKind::RAR,
                          PairKind::WAR}) {
        const LogHistogram &hist = pairs.times(kind);
        temporal.row(
            {pairKindName(kind), formatCount(hist.count()),
             hist.empty() ? "-"
                          : formatDurationUs(static_cast<double>(
                                hist.quantile(0.5)))});
    }
    temporal.print(os);
}

} // namespace cbs
