#include "analysis/workload_summary.h"

#include "analysis/cache_results.h"
#include "common/format.h"
#include "report/json_util.h"
#include "report/table.h"

namespace cbs {

// The deterministic JSON emission helpers moved to report/json_util.h
// so the cbs.compare.v1 writer (app/compare.cc) shares them; the
// output bytes are unchanged.
using jsonio::jsonDist;
using jsonio::jsonEscape;
using jsonio::jsonNumber;

void
WorkloadSummary::print(std::ostream &os) const
{
    const BasicStats &s = basic.stats();

    TextTable overview("Workload overview");
    overview.header({"metric", "value"});
    overview.row({"volumes", formatCount(s.volumes)});
    overview.row({"requests", formatCount(s.requests())});
    overview.row(
        {"duration",
         formatDurationUs(static_cast<double>(s.last_timestamp -
                                              s.first_timestamp))});
    overview.row(
        {"write:read ratio", formatFixed(s.writeToReadRatio(), 2)});
    overview.row({"read traffic", formatBytes(s.read_bytes)});
    overview.row({"write traffic", formatBytes(s.write_bytes)});
    overview.row({"update traffic", formatBytes(s.update_bytes)});
    overview.row({"total WSS", formatBytes(s.total_wss_bytes)});
    overview.row({"read WSS share", formatPercent(s.readWssShare())});
    overview.row({"write WSS share", formatPercent(s.writeWssShare())});
    overview.print(os);
    os << '\n';

    TextTable dists("Per-volume distributions (median [p25, p90])");
    dists.header({"metric", "median", "p25", "p90"});
    auto dist_row = [&](const char *name, const Ecdf &cdf,
                        auto fmt) {
        if (cdf.empty()) {
            dists.row({name, "-", "-", "-"});
            return;
        }
        dists.row({name, fmt(cdf.quantile(0.5)), fmt(cdf.quantile(0.25)),
                   fmt(cdf.quantile(0.9))});
    };
    auto pct = [](double v) { return formatPercent(v); };
    auto num = [](double v) { return formatFixed(v, 2); };
    auto kib = [](double v) {
        return formatBytes(static_cast<std::uint64_t>(v));
    };
    dist_row("avg read size", sizes.volumeAvgReadSizes(), kib);
    dist_row("avg write size", sizes.volumeAvgWriteSizes(), kib);
    dist_row("write:read ratio", ratios.ratios(), num);
    dist_row("avg intensity (req/s)", intensity.avgIntensities(), num);
    dist_row("burstiness ratio", intensity.burstinessRatios(), num);
    dist_row("randomness ratio", randomness.ratios(), pct);
    dist_row("update coverage", coverage.coverage(), pct);
    dist_row("reads to read-mostly", traffic.readMostlyShares(), pct);
    dist_row("writes to write-mostly", traffic.writeMostlyShares(),
             pct);
    dists.print(os);
    os << '\n';

    TextTable temporal("Temporal pairs");
    temporal.header({"kind", "count", "median gap"});
    for (PairKind kind : {PairKind::RAW, PairKind::WAW, PairKind::RAR,
                          PairKind::WAR}) {
        const LogHistogram &hist = pairs.times(kind);
        temporal.row(
            {pairKindName(kind), formatCount(hist.count()),
             hist.empty() ? "-"
                          : formatDurationUs(static_cast<double>(
                                hist.quantile(0.5)))});
    }
    temporal.print(os);

    if (cache_sim_ != nullptr) {
        os << '\n';
        TextTable cache("Cache miss ratios (policy=" +
                        cache_sim_->policyName() + ", mode=" +
                        cache_sim_->modeName() +
                        ", per-volume median [p25, p90])");
        cache.header({"wss fraction", "read p50", "read p25",
                      "read p90", "write p50", "write p25",
                      "write p90"});
        auto cell = [](const ExactQuantiles &q, double p) {
            return q.empty() ? std::string("-")
                             : formatPercent(q.quantile(p));
        };
        for (std::size_t i = 0; i < cache_sim_->fractionCount(); ++i) {
            const ExactQuantiles &r = cache_sim_->readMissRatios(i);
            const ExactQuantiles &w = cache_sim_->writeMissRatios(i);
            cache.row({formatPercent(cache_sim_->fractionAt(i)),
                       cell(r, 0.5), cell(r, 0.25), cell(r, 0.9),
                       cell(w, 0.5), cell(w, 0.25), cell(w, 0.9)});
        }
        cache.print(os);
    }
}

void
WorkloadSummary::writeJson(std::ostream &os) const
{
    const BasicStats &s = basic.stats();

    os << "{\n  \"schema\": \"cbs.summary.v1\",\n  \"overview\": {\n";
    os << "    \"volumes\": " << s.volumes << ",\n";
    os << "    \"requests\": " << s.requests() << ",\n";
    os << "    \"reads\": " << s.reads << ",\n";
    os << "    \"writes\": " << s.writes << ",\n";
    os << "    \"first_timestamp_us\": " << s.first_timestamp << ",\n";
    os << "    \"last_timestamp_us\": " << s.last_timestamp << ",\n";
    os << "    \"read_bytes\": " << s.read_bytes << ",\n";
    os << "    \"write_bytes\": " << s.write_bytes << ",\n";
    os << "    \"update_bytes\": " << s.update_bytes << ",\n";
    os << "    \"total_wss_bytes\": " << s.total_wss_bytes << ",\n";
    os << "    \"read_wss_bytes\": " << s.read_wss_bytes << ",\n";
    os << "    \"write_wss_bytes\": " << s.write_wss_bytes << ",\n";
    os << "    \"update_wss_bytes\": " << s.update_wss_bytes << ",\n";
    os << "    \"write_read_ratio\": ";
    jsonNumber(os, s.writeToReadRatio());
    os << ",\n    \"read_wss_share\": ";
    jsonNumber(os, s.readWssShare());
    os << ",\n    \"write_wss_share\": ";
    jsonNumber(os, s.writeWssShare());
    os << "\n  },\n  \"distributions\": {\n";
    const char *sep = "";
    auto dist = [&](const char *name, const Ecdf &cdf) {
        os << sep << "    \"" << name << "\": ";
        jsonDist(os, cdf);
        sep = ",\n";
    };
    dist("avg_read_size_bytes", sizes.volumeAvgReadSizes());
    dist("avg_write_size_bytes", sizes.volumeAvgWriteSizes());
    dist("active_days", days.activeDays());
    dist("write_read_ratio", ratios.ratios());
    dist("avg_intensity_req_s", intensity.avgIntensities());
    dist("peak_intensity_req_s", intensity.peakIntensities());
    dist("burstiness_ratio", intensity.burstinessRatios());
    dist("randomness_ratio", randomness.ratios());
    dist("update_coverage", coverage.coverage());
    dist("read_mostly_share", traffic.readMostlyShares());
    dist("write_mostly_share", traffic.writeMostlyShares());
    os << "\n  },\n  \"interarrival\": {\n    \"count\": "
       << interarrival.global().count() << ",\n    \"median_us\": ";
    if (interarrival.global().empty())
        os << "null";
    else
        os << interarrival.global().quantile(0.5);
    os << "\n  },\n  \"temporal_pairs\": {\n";
    sep = "";
    for (PairKind kind : {PairKind::RAW, PairKind::WAW, PairKind::RAR,
                          PairKind::WAR}) {
        const LogHistogram &hist = pairs.times(kind);
        os << sep << "    \"" << pairKindName(kind)
           << "\": {\"count\": " << pairs.count(kind)
           << ", \"median_gap_us\": ";
        if (hist.empty())
            os << "null";
        else
            os << hist.quantile(0.5);
        os << '}';
        sep = ",\n";
    }
    os << "\n  }";
    if (cache_sim_ != nullptr) {
        os << ",\n  \"cache_sim\": {\n    \"policy\": \"";
        jsonEscape(os, cache_sim_->policyName());
        os << "\",\n    \"mode\": \"" << cache_sim_->modeName()
           << "\",\n    \"block_size\": " << cache_sim_->blockSize()
           << ",\n    \"fractions\": [";
        const char *frac_sep = "";
        for (std::size_t i = 0; i < cache_sim_->fractionCount(); ++i) {
            os << frac_sep << "\n      {\"fraction\": ";
            jsonNumber(os, cache_sim_->fractionAt(i));
            os << ", \"read_miss_ratio\": ";
            jsonDist(os, cache_sim_->readMissRatios(i));
            os << ", \"write_miss_ratio\": ";
            jsonDist(os, cache_sim_->writeMissRatios(i));
            os << '}';
            frac_sep = ",";
        }
        os << "\n    ]";
        // The full miss-ratio curve comes free with the MRC engines;
        // the two-pass engine reports zero points and keeps its
        // historical section shape (minus the new "mode" key).
        if (cache_sim_->curvePointCount() > 0) {
            os << ",\n    \"curve\": [";
            const char *point_sep = "";
            for (std::size_t i = 0; i < cache_sim_->curvePointCount();
                 ++i) {
                os << point_sep << "\n      {\"fraction\": ";
                jsonNumber(os, cache_sim_->curveFractionAt(i));
                os << ", \"read_miss_ratio\": ";
                jsonDist(os, *cache_sim_->curveReadMissRatios(i));
                os << ", \"write_miss_ratio\": ";
                jsonDist(os, *cache_sim_->curveWriteMissRatios(i));
                os << '}';
                point_sep = ",";
            }
            os << "\n    ]";
        }
        os << "\n  }";
    }
    // The pipeline section only exists when degraded mode was enabled:
    // lane lists depend on the shard count, so emitting them
    // unconditionally would break byte-identical output across
    // --threads values in the default (strict) configuration.
    if (pipeline_status_.degraded_enabled) {
        os << ",\n  \"pipeline\": {\n    \"degraded\": "
           << (pipeline_status_.degraded ? "true" : "false")
           << ",\n    \"lanes\": [";
        const char *lane_sep = "";
        for (const LaneStatus &lane : pipeline_status_.lanes) {
            os << lane_sep << "\n      {\"lane\": \"";
            jsonEscape(os, lane.lane);
            os << "\", \"ok\": " << (lane.ok ? "true" : "false");
            if (!lane.ok) {
                os << ", \"error\": \"";
                jsonEscape(os, lane.error);
                os << '"';
            }
            os << '}';
            lane_sep = ",";
        }
        os << "\n    ]\n  }";
    }
    os << "\n}\n";
}

} // namespace cbs
