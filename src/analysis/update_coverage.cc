#include "analysis/update_coverage.h"

#include "common/error.h"

namespace cbs {

UpdateCoverageAnalyzer::UpdateCoverageAnalyzer(std::uint64_t block_size)
    : block_size_(block_size)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
UpdateCoverageAnalyzer::consume(const IoRequest &req)
{
    VolumeWss &wss = wss_[req.volume];
    forEachBlock(req, block_size_, [&](BlockNo block) {
        auto [flags, inserted] =
            blocks_.tryEmplace(blockKey(req.volume, block));
        if (inserted) {
            flags = kTouched;
            ++wss.total_blocks;
        }
        if (req.isWrite()) {
            if (flags & kWritten) {
                if (!(flags & kUpdated)) {
                    flags |= kUpdated;
                    ++wss.updated_blocks;
                }
            } else {
                flags |= kWritten;
                ++wss.written_blocks;
            }
        }
    });
}

void
UpdateCoverageAnalyzer::finalize()
{
    for (const VolumeWss &wss : wss_) {
        if (wss.total_blocks)
            cdf_.add(wss.updateCoverage());
    }
}

} // namespace cbs
