#include "analysis/update_coverage.h"

#include "common/error.h"

namespace cbs {

UpdateCoverageAnalyzer::UpdateCoverageAnalyzer(std::uint64_t block_size)
    : block_size_(block_size)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
UpdateCoverageAnalyzer::consume(const IoRequest &req)
{
    VolumeWss &wss = wss_[req.volume];
    blocks_.forEachState(
        req.volume, req.firstBlock(block_size_),
        req.lastBlock(block_size_), [&](std::uint8_t &flags) {
            if (flags == 0) { // first touch of this block
                flags = kTouched;
                ++wss.total_blocks;
            }
            if (req.isWrite()) {
                if (flags & kWritten) {
                    if (!(flags & kUpdated)) {
                        flags |= kUpdated;
                        ++wss.updated_blocks;
                    }
                } else {
                    flags |= kWritten;
                    ++wss.written_blocks;
                }
            }
        });
}

void
UpdateCoverageAnalyzer::consumeColumns(const RequestBatch &batch)
{
    // Volume-major kernel: the run's WSS tallies are hoisted out of
    // the row loop (one dense PerVolume lookup per run instead of one
    // per touched block), and the chunked map turns each request's
    // block span into one probe per overlapped chunk. A zero state
    // means "never touched" — kTouched is set on first touch, so any
    // touched block's flags are non-zero.
    const std::uint8_t *is_write = batch.isWrite();
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        VolumeWss &wss = wss_[run.volume];
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            std::uint32_t i = order[k];
            std::uint8_t write = is_write[i];
            blocks_.forEachState(
                run.volume, batch.firstBlockAt(i, block_size_),
                batch.lastBlockAt(i, block_size_),
                [&](std::uint8_t &flags) {
                    if (flags == 0) {
                        flags = kTouched;
                        ++wss.total_blocks;
                    }
                    if (write) {
                        if (flags & kWritten) {
                            if (!(flags & kUpdated)) {
                                flags |= kUpdated;
                                ++wss.updated_blocks;
                            }
                        } else {
                            flags |= kWritten;
                            ++wss.written_blocks;
                        }
                    }
                });
        }
    }
}

std::unique_ptr<ShardableAnalyzer>
UpdateCoverageAnalyzer::clone() const
{
    return std::make_unique<UpdateCoverageAnalyzer>(block_size_);
}

void
UpdateCoverageAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<UpdateCoverageAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_,
               "cannot merge update_coverage shards with different "
               "block sizes");
    // The chunk key embeds the volume, so volume-disjoint shards union
    // without aliasing and the per-volume block counts stay exact.
    blocks_.mergeFrom(other.blocks_,
                      [](std::uint8_t &own, const std::uint8_t &theirs) {
                          own |= theirs;
                      });
    wss_.mergeFrom(other.wss_,
                   [](VolumeWss &own, const VolumeWss &theirs) {
                       own.total_blocks += theirs.total_blocks;
                       own.written_blocks += theirs.written_blocks;
                       own.updated_blocks += theirs.updated_blocks;
                   });
}

void
UpdateCoverageAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(block_size_);
    blocks_.serialize(sink, [](snap::Sink &s, const std::uint8_t &flags) {
        s.u8(flags);
    });
    wss_.serialize(sink, [](snap::Sink &s, const VolumeWss &wss) {
        s.vu64(wss.total_blocks);
        s.vu64(wss.written_blocks);
        s.vu64(wss.updated_blocks);
    });
}

void
UpdateCoverageAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t block_size = source.vu64();
    CBS_EXPECT(block_size == block_size_,
               "update_coverage snapshot block size "
                   << block_size << " != configured " << block_size_);
    blocks_.deserialize(source,
                        [](snap::Source &s, std::uint8_t &flags) {
                            flags = s.u8();
                            if (flags &
                                ~(kTouched | kWritten | kUpdated))
                                s.fail("unknown update_coverage "
                                       "block flags");
                        });
    wss_.deserialize(source, [](snap::Source &s, VolumeWss &wss) {
        wss.total_blocks = s.vu64();
        wss.written_blocks = s.vu64();
        wss.updated_blocks = s.vu64();
    });
    source.expectEnd();
}

void
UpdateCoverageAnalyzer::finalize()
{
    for (const VolumeWss &wss : wss_) {
        if (wss.total_blocks)
            cdf_.add(wss.updateCoverage());
    }
}

} // namespace cbs
