#include "analysis/update_coverage.h"

#include "common/error.h"

namespace cbs {

UpdateCoverageAnalyzer::UpdateCoverageAnalyzer(std::uint64_t block_size)
    : block_size_(block_size)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
UpdateCoverageAnalyzer::consume(const IoRequest &req)
{
    VolumeWss &wss = wss_[req.volume];
    forEachBlock(req, block_size_, [&](BlockNo block) {
        auto [flags, inserted] =
            blocks_.tryEmplace(blockKey(req.volume, block));
        if (inserted) {
            flags = kTouched;
            ++wss.total_blocks;
        }
        if (req.isWrite()) {
            if (flags & kWritten) {
                if (!(flags & kUpdated)) {
                    flags |= kUpdated;
                    ++wss.updated_blocks;
                }
            } else {
                flags |= kWritten;
                ++wss.written_blocks;
            }
        }
    });
}

std::unique_ptr<ShardableAnalyzer>
UpdateCoverageAnalyzer::clone() const
{
    return std::make_unique<UpdateCoverageAnalyzer>(block_size_);
}

void
UpdateCoverageAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<UpdateCoverageAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_,
               "cannot merge update_coverage shards with different "
               "block sizes");
    // blockKey embeds the volume, so volume-disjoint shards union
    // without key conflicts and the per-volume block counts stay exact.
    blocks_.mergeFrom(other.blocks_,
                      [](std::uint8_t &own, const std::uint8_t &theirs) {
                          own |= theirs;
                      });
    wss_.mergeFrom(other.wss_,
                   [](VolumeWss &own, const VolumeWss &theirs) {
                       own.total_blocks += theirs.total_blocks;
                       own.written_blocks += theirs.written_blocks;
                       own.updated_blocks += theirs.updated_blocks;
                   });
}

void
UpdateCoverageAnalyzer::finalize()
{
    for (const VolumeWss &wss : wss_) {
        if (wss.total_blocks)
            cdf_.add(wss.updateCoverage());
    }
}

} // namespace cbs
