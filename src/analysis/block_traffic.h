/**
 * @file
 * BlockTrafficAnalyzer: per-block traffic tallies powering two spatial
 * findings from one map:
 *
 *  - Finding 9 (Fig. 11): traffic share of the top-1% / top-10% most
 *    trafficked read (write) blocks per volume;
 *  - Finding 10 (Fig. 12, Table III): share of read (write) traffic
 *    going to read-mostly (write-mostly) blocks, where a block is
 *    read-mostly (write-mostly) if >95% of its traffic is reads
 *    (writes).
 *
 * Traffic is attributed block-granularly: each block a request touches
 * receives one block-size unit of the request's traffic.
 */

#ifndef CBS_ANALYSIS_BLOCK_TRAFFIC_H
#define CBS_ANALYSIS_BLOCK_TRAFFIC_H

#include <array>
#include <cstdint>

#include "analysis/analyzer.h"
#include "analysis/block_state_map.h"
#include "analysis/per_volume.h"
#include "stats/boxplot.h"
#include "stats/ecdf.h"

namespace cbs {

/** Traffic share of a volume's hottest blocks (one op direction). */
struct AggregationStats
{
    double top1_share = 0.0;  //!< traffic share of the top-1% blocks
    double top10_share = 0.0; //!< traffic share of the top-10% blocks
};

class BlockTrafficAnalyzer : public ShardableAnalyzer
{
  public:
    /**
     * @param block_size block granularity.
     * @param mostly_threshold traffic share above which a block counts
     *        as read-mostly / write-mostly (paper: 0.95).
     */
    explicit BlockTrafficAnalyzer(
        std::uint64_t block_size = kDefaultBlockSize,
        double mostly_threshold = 0.95);

    void consume(const IoRequest &req) override;
    void consumeBatch(std::span<const IoRequest> batch) override;
    void consumeColumns(const RequestBatch &batch) override;
    void finalize() override;
    std::string name() const override { return "block_traffic"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    // ---- Finding 9 (Fig. 11) ----

    /** Per-volume top-1% / top-10% read traffic shares. */
    const ExactQuantiles &readTop1() const { return read_top_[0]; }
    const ExactQuantiles &readTop10() const { return read_top_[1]; }
    /** Per-volume top-1% / top-10% write traffic shares. */
    const ExactQuantiles &writeTop1() const { return write_top_[0]; }
    const ExactQuantiles &writeTop10() const { return write_top_[1]; }

    // ---- Finding 10 (Fig. 12, Table III) ----

    /** Overall share of read traffic going to read-mostly blocks. */
    double overallReadToReadMostly() const;
    /** Overall share of write traffic going to write-mostly blocks. */
    double overallWriteToWriteMostly() const;

    /** CDF across volumes of read-traffic share to read-mostly blocks. */
    const Ecdf &readMostlyShares() const { return read_mostly_cdf_; }
    /** CDF across volumes of write-traffic share to write-mostly blocks. */
    const Ecdf &writeMostlyShares() const { return write_mostly_cdf_; }

  private:
    struct Traffic
    {
        std::uint64_t read_units = 0;
        std::uint64_t write_units = 0;
    };

    std::uint64_t block_size_;
    double mostly_threshold_;
    BlockStateMap<Traffic> blocks_;

    std::array<ExactQuantiles, 2> read_top_;
    std::array<ExactQuantiles, 2> write_top_;
    Ecdf read_mostly_cdf_;
    Ecdf write_mostly_cdf_;
    std::uint64_t total_read_units_ = 0;
    std::uint64_t total_write_units_ = 0;
    std::uint64_t read_units_to_read_mostly_ = 0;
    std::uint64_t write_units_to_write_mostly_ = 0;
};

} // namespace cbs

#endif // CBS_ANALYSIS_BLOCK_TRAFFIC_H
