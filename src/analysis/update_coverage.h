/**
 * @file
 * UpdateCoverageAnalyzer: per-volume update coverage (Finding 11;
 * Fig. 13, Table IV).
 *
 * The update working set of a volume is the set of blocks written more
 * than once; its update coverage is update WSS / total WSS (the CodFS
 * definition the paper uses).
 */

#ifndef CBS_ANALYSIS_UPDATE_COVERAGE_H
#define CBS_ANALYSIS_UPDATE_COVERAGE_H

#include <cstdint>

#include "analysis/analyzer.h"
#include "analysis/block_state_map.h"
#include "analysis/per_volume.h"
#include "stats/ecdf.h"

namespace cbs {

class UpdateCoverageAnalyzer : public ShardableAnalyzer
{
  public:
    explicit UpdateCoverageAnalyzer(
        std::uint64_t block_size = kDefaultBlockSize);

    void consume(const IoRequest &req) override;
    void consumeColumns(const RequestBatch &batch) override;
    void finalize() override;
    std::string name() const override { return "update_coverage"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** CDF of per-volume update coverage in [0,1] (Fig. 13). */
    const Ecdf &coverage() const { return cdf_; }

    /** Per-volume working-set sizes in blocks (also used by the cache
     *  simulation's sizing pass). */
    struct VolumeWss
    {
        std::uint64_t total_blocks = 0;
        std::uint64_t written_blocks = 0;
        std::uint64_t updated_blocks = 0;

        double
        updateCoverage() const
        {
            return total_blocks
                       ? static_cast<double>(updated_blocks) /
                             static_cast<double>(total_blocks)
                       : 0.0;
        }
    };

    const PerVolume<VolumeWss> &volumeWss() const { return wss_; }

  private:
    static constexpr std::uint8_t kTouched = 1;
    static constexpr std::uint8_t kWritten = 2;
    static constexpr std::uint8_t kUpdated = 4;

    std::uint64_t block_size_;
    BlockStateMap<std::uint8_t> blocks_;
    PerVolume<VolumeWss> wss_;
    Ecdf cdf_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_UPDATE_COVERAGE_H
