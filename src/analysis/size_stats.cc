#include "analysis/size_stats.h"

namespace cbs {

SizeAnalyzer::SizeAnalyzer() : read_sizes_(7), write_sizes_(7) {}

void
SizeAnalyzer::consume(const IoRequest &req)
{
    VolumeSums &sums = sums_[req.volume];
    if (req.isRead()) {
        read_sizes_.add(req.length);
        sums.read_bytes += req.length;
        ++sums.reads;
    } else {
        write_sizes_.add(req.length);
        sums.write_bytes += req.length;
        ++sums.writes;
    }
}

void
SizeAnalyzer::finalize()
{
    for (const VolumeSums &sums : sums_) {
        if (sums.reads)
            avg_read_.add(static_cast<double>(sums.read_bytes) /
                          static_cast<double>(sums.reads));
        if (sums.writes)
            avg_write_.add(static_cast<double>(sums.write_bytes) /
                           static_cast<double>(sums.writes));
    }
}

} // namespace cbs
