#include "analysis/size_stats.h"

namespace cbs {

SizeAnalyzer::SizeAnalyzer() : read_sizes_(7), write_sizes_(7) {}

std::unique_ptr<ShardableAnalyzer>
SizeAnalyzer::clone() const
{
    return std::make_unique<SizeAnalyzer>();
}

void
SizeAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<SizeAnalyzer>(shard);
    read_sizes_.merge(other.read_sizes_);
    write_sizes_.merge(other.write_sizes_);
    sums_.mergeFrom(other.sums_,
                    [](VolumeSums &own, const VolumeSums &theirs) {
                        own.read_bytes += theirs.read_bytes;
                        own.reads += theirs.reads;
                        own.write_bytes += theirs.write_bytes;
                        own.writes += theirs.writes;
                    });
}

void
SizeAnalyzer::serialize(snap::Sink &sink) const
{
    // Pre-finalize state only: the avg_* Ecdfs are finalize products,
    // rebuilt from sums_ after merging.
    read_sizes_.serialize(sink);
    write_sizes_.serialize(sink);
    sums_.serialize(sink, [](snap::Sink &s, const VolumeSums &sums) {
        s.vu64(sums.read_bytes);
        s.vu64(sums.reads);
        s.vu64(sums.write_bytes);
        s.vu64(sums.writes);
    });
}

void
SizeAnalyzer::deserialize(snap::Source &source)
{
    read_sizes_.deserialize(source);
    write_sizes_.deserialize(source);
    sums_.deserialize(source, [](snap::Source &s, VolumeSums &sums) {
        sums.read_bytes = s.vu64();
        sums.reads = s.vu64();
        sums.write_bytes = s.vu64();
        sums.writes = s.vu64();
    });
    source.expectEnd();
}

void
SizeAnalyzer::consumeBatch(std::span<const IoRequest> batch)
{
    // One virtual call per batch; the qualified calls below devirtualize.
    for (const IoRequest &req : batch)
        SizeAnalyzer::consume(req);
}

void
SizeAnalyzer::consume(const IoRequest &req)
{
    VolumeSums &sums = sums_[req.volume];
    if (req.isRead()) {
        read_sizes_.add(req.length);
        sums.read_bytes += req.length;
        ++sums.reads;
    } else {
        write_sizes_.add(req.length);
        sums.write_bytes += req.length;
        ++sums.writes;
    }
}

void
SizeAnalyzer::finalize()
{
    for (const VolumeSums &sums : sums_) {
        if (sums.reads)
            avg_read_.add(static_cast<double>(sums.read_bytes) /
                          static_cast<double>(sums.reads));
        if (sums.writes)
            avg_write_.add(static_cast<double>(sums.write_bytes) /
                           static_cast<double>(sums.writes));
    }
}

} // namespace cbs
