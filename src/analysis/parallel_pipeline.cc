#include "analysis/parallel_pipeline.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/spsc_queue.h"
#include "obs/metrics.h"

namespace cbs {
namespace {

// Queues carry SoA batches in both execution modes; the columnar flag
// only selects the worker-side dispatch (consumeColumns vs a row
// materialization + consumeBatch) and keeps one scatter path.
using Batch = RequestBatch;
using BatchQueue = SpscQueue<Batch>;

/**
 * Observability instruments of one consumer lane. All sinks live in
 * the caller's MetricsRegistry; a lane without metrics holds none and
 * its worker runs the original untimed loop.
 */
struct LaneMetrics
{
    obs::Counter *records = nullptr;  //!< requests consumed
    obs::Counter *batches = nullptr;  //!< batches consumed
    obs::Counter *idle_ns = nullptr;  //!< time blocked on an empty queue
    obs::Counter *full_waits = nullptr; //!< producer stalls on this lane
    obs::Gauge *queue_depth = nullptr;  //!< batches queued (approx)
    obs::Counter *watchdog_stalls = nullptr; //!< stall flags raised
    obs::Gauge *failed = nullptr;       //!< 1 when the lane failed
    /** Per-analyzer batch-time sinks, parallel to the lane's set. */
    std::vector<obs::Histogram *> analyzer_ns;

    /** Register the lane's instruments under @p lane (e.g.
     *  "parallel.shard.3"), sharing analyzer histograms by name. */
    static LaneMetrics
    forLane(obs::MetricsRegistry &registry, const std::string &lane,
            const std::vector<Analyzer *> &analyzers)
    {
        LaneMetrics m;
        m.records = &registry.counter(lane + ".records");
        m.batches = &registry.counter(lane + ".batches");
        m.idle_ns = &registry.counter(lane + ".idle_ns");
        m.full_waits = &registry.counter(lane + ".queue_full_waits");
        m.queue_depth = &registry.gauge(lane + ".queue_depth");
        m.watchdog_stalls = &registry.counter(lane + ".watchdog_stalls");
        m.failed = &registry.gauge(lane + ".failed");
        m.analyzer_ns.reserve(analyzers.size());
        for (Analyzer *analyzer : analyzers)
            m.analyzer_ns.push_back(&registry.histogram(
                "analyzer." + analyzer->name() + ".batch_ns"));
        return m;
    }
};

/**
 * One consumer thread: pops batches off bounded queues and feeds an
 * analyzer set. Used both for the per-shard replica workers and for
 * the in-order lane. The worker owns one SPSC queue per ingest lane
 * (a single queue in the common single-producer case) and drains them
 * strictly in lane order — ingest partitions are contiguous in time,
 * so sequential drain preserves the order every analyzer relies on.
 * On failure it records the exception, aborts every queue (so the
 * producers' pushes to this worker turn into no-ops), and keeps
 * draining, so no producer can block forever on a full queue.
 */
class LaneWorker
{
  public:
    LaneWorker(std::string name, std::size_t queue_batches,
               std::size_t ingest_lanes,
               std::vector<Analyzer *> analyzers, bool columnar,
               std::unique_ptr<LaneMetrics> metrics = nullptr)
        : name_(std::move(name)), analyzers_(std::move(analyzers)),
          columnar_(columnar), metrics_(std::move(metrics))
    {
        queues_.reserve(ingest_lanes);
        for (std::size_t k = 0; k < ingest_lanes; ++k)
            queues_.push_back(
                std::make_unique<BatchQueue>(queue_batches));
        thread_ = std::thread([this] { run(); });
    }

    const std::string &name() const { return name_; }

    /** Queue owned by ingest lane @p k (only that lane pushes). */
    BatchQueue &queue(std::size_t k = 0) { return *queues_[k]; }

    /** Batches queued across all lanes (approximate). */
    std::size_t
    queuedBatches() const
    {
        std::size_t total = 0;
        for (const auto &queue : queues_)
            total += queue->size();
        return total;
    }

    /** Close every queue, join, and return the worker's exception
     *  (null on success). The caller decides whether to rethrow or
     *  contain. */
    std::exception_ptr
    finish()
    {
        for (auto &queue : queues_)
            queue->close();
        thread_.join();
        noteQueueTotals();
        if (metrics_)
            metrics_->failed->set(error_ ? 1 : 0);
        return error_;
    }

    /** Join without rethrowing (teardown after another failure). */
    void
    abandon()
    {
        for (auto &queue : queues_)
            queue->close();
        if (thread_.joinable())
            thread_.join();
        noteQueueTotals();
    }

    bool finished() const { return !thread_.joinable(); }

    /** Producer-side depth sample after a push (null-safe). */
    void
    noteDepth()
    {
        if (metrics_)
            metrics_->queue_depth->set(
                static_cast<std::int64_t>(queuedBatches()));
    }

    /** Batches popped so far — the watchdog's progress signal. */
    std::uint64_t
    batchesConsumed() const
    {
        return batches_consumed_.load(std::memory_order_relaxed);
    }

    /** Watchdog verdict: queued work but no progress this interval. */
    void
    noteStall()
    {
        stall_flags_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_)
            metrics_->watchdog_stalls->increment();
    }

    std::uint64_t
    stallFlags() const
    {
        return stall_flags_.load(std::memory_order_relaxed);
    }

  private:
    void
    run()
    {
        Batch batch;
        // Lane queues drain strictly in order: partition k's requests
        // all precede partition k+1's in time, so finishing one lane
        // before starting the next preserves consumption order.
        for (auto &queue_ptr : queues_) {
            BatchQueue &queue = *queue_ptr;
            for (;;) {
                bool got;
                if (metrics_) {
                    obs::ScopedTimer idle(nullptr, metrics_->idle_ns);
                    got = queue.pop(batch);
                } else {
                    got = queue.pop(batch);
                }
                if (!got)
                    break;
                batches_consumed_.fetch_add(1,
                                            std::memory_order_relaxed);
                if (error_)
                    continue; // drain so no producer blocks
                try {
                    if (metrics_) {
                        metrics_->records->add(batch.size());
                        metrics_->batches->increment();
                        for (std::size_t i = 0; i < analyzers_.size();
                             ++i) {
                            obs::ScopedTimer timer(
                                metrics_->analyzer_ns[i]);
                            dispatch(*analyzers_[i], batch);
                        }
                    } else {
                        for (Analyzer *analyzer : analyzers_)
                            dispatch(*analyzer, batch);
                    }
                } catch (...) {
                    error_ = std::current_exception();
                    // Aborting turns the producers' future pushes to
                    // this worker into dropped no-ops: a failed shard
                    // stops consuming CPU, and any producer blocked
                    // on one of its full queues wakes immediately.
                    for (auto &q : queues_)
                        q->abort();
                }
            }
        }
    }

    void
    dispatch(Analyzer &analyzer, const Batch &batch)
    {
        if (columnar_)
            analyzer.consumeColumns(batch);
        else
            // Legacy dispatch: one shared row materialization per
            // batch (cached inside the batch), then the span path.
            analyzer.consumeBatch(batch.rowsMaterialized());
    }

    /** Fold the queues' cumulative stall counts into the registry. */
    void
    noteQueueTotals()
    {
        if (!metrics_ || totals_noted_)
            return;
        totals_noted_ = true;
        for (auto &queue : queues_)
            metrics_->full_waits->add(queue->fullWaits());
        metrics_->queue_depth->set(0);
    }

    std::string name_;
    std::vector<std::unique_ptr<BatchQueue>> queues_;
    std::vector<Analyzer *> analyzers_;
    bool columnar_ = true;
    std::unique_ptr<LaneMetrics> metrics_;
    bool totals_noted_ = false;
    std::atomic<std::uint64_t> batches_consumed_{0};
    std::atomic<std::uint64_t> stall_flags_{0};
    std::thread thread_;
    std::exception_ptr error_;
};

/** One line of human-readable failure text from an exception_ptr. */
std::string
describeError(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &err) {
        return err.what();
    } catch (...) {
        return "unknown error";
    }
}

/**
 * The stall watchdog: a sampling thread that flags lanes with queued
 * batches but no consumption progress between samples. Flags feed
 * metrics only — they are timing-dependent by nature and must never
 * influence analysis results.
 */
class Watchdog
{
  public:
    Watchdog(std::vector<std::unique_ptr<LaneWorker>> &workers,
             std::uint64_t interval_ms)
        : workers_(workers), interval_ms_(interval_ms)
    {
        thread_ = std::thread([this] { run(); });
    }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

    ~Watchdog() { stop(); }

  private:
    void
    run()
    {
        std::vector<std::uint64_t> last(workers_.size());
        for (std::size_t i = 0; i < workers_.size(); ++i)
            last[i] = workers_[i]->batchesConsumed();
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(lock,
                             std::chrono::milliseconds(interval_ms_),
                             [&] { return stop_; })) {
            for (std::size_t i = 0; i < workers_.size(); ++i) {
                LaneWorker &worker = *workers_[i];
                std::uint64_t now = worker.batchesConsumed();
                if (now == last[i] && worker.queuedBatches() > 0 &&
                    !worker.finished())
                    worker.noteStall();
                last[i] = now;
            }
        }
    }

    std::vector<std::unique_ptr<LaneWorker>> &workers_;
    std::uint64_t interval_ms_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

PipelineRunStatus
runPipelineParallel(TraceSource &source,
                    const std::vector<Analyzer *> &analyzers,
                    const ParallelOptions &options)
{
    std::size_t shards = options.shards
                             ? options.shards
                             : std::thread::hardware_concurrency();
    if (shards == 0)
        shards = 1;
    CBS_EXPECT(shards <= 256, "shard count " << shards
                                             << " is unreasonable");
    CBS_EXPECT(options.batch_size > 0, "batch size must be positive");
    std::size_t queue_batches =
        options.queue_batches ? options.queue_batches : 1;

    // Partition the analyzer set. Order within each partition follows
    // the caller's vector, and finalize happens in the caller's order.
    std::vector<ShardableAnalyzer *> shardable;
    std::vector<Analyzer *> in_order;
    for (Analyzer *analyzer : analyzers) {
        if (auto *s = dynamic_cast<ShardableAnalyzer *>(analyzer))
            shardable.push_back(s);
        else
            in_order.push_back(analyzer);
    }

    PipelineRunStatus status;
    status.degraded_enabled = options.degraded_ok;

    // Nothing to parallelize: fall back to the serial pipeline. There
    // are no lanes to contain here, so failures rethrow even in
    // degraded mode (a failed serial run has no partial result worth
    // reporting).
    if (shardable.empty() || shards == 1) {
        PipelineOptions serial;
        serial.batch_records = options.batch_size;
        serial.columnar = options.columnar;
        serial.metrics = options.metrics;
        runPipeline(source, analyzers, serial);
        status.lanes.push_back(LaneStatus{"serial", true, ""});
        return status;
    }

    // Multi-lane ingestion: split a SplittableSource into contiguous
    // time-ordered partitions, one producer thread each. The split
    // happens before the workers are built so every worker can own
    // one queue per lane.
    std::size_t want_lanes =
        options.ingest_lanes ? options.ingest_lanes : shards;
    CBS_EXPECT(want_lanes <= 256, "ingest lane count "
                                      << want_lanes
                                      << " is unreasonable");
    std::vector<std::unique_ptr<TraceSource>> partitions;
    if (want_lanes > 1) {
        if (auto *splittable = dynamic_cast<SplittableSource *>(&source))
            partitions = splittable->split(want_lanes);
        // else: non-splittable source, single-producer fallback.
    }
    std::size_t lanes = partitions.empty() ? 1 : partitions.size();

    obs::MetricsRegistry *metrics = options.metrics;
    const std::string &prefix = options.metrics_prefix;
    if (metrics) {
        metrics->gauge(prefix + ".shards")
            .set(static_cast<std::int64_t>(shards));
        metrics->gauge(prefix + ".batch_size")
            .set(static_cast<std::int64_t>(options.batch_size));
        metrics->gauge(prefix + ".queue_batches")
            .set(static_cast<std::int64_t>(queue_batches));
        metrics->gauge(prefix + ".ingest_lanes")
            .set(static_cast<std::int64_t>(lanes));
        metrics->counter(prefix + ".runs").increment();
        metrics->counter(prefix + ".degraded_runs");
    }

    // Per-shard analyzer replicas.
    std::vector<std::vector<std::unique_ptr<ShardableAnalyzer>>> replicas(
        shards);
    for (std::size_t s = 0; s < shards; ++s) {
        replicas[s].reserve(shardable.size());
        for (ShardableAnalyzer *analyzer : shardable)
            replicas[s].push_back(analyzer->clone());
    }

    std::vector<std::unique_ptr<LaneWorker>> workers;
    workers.reserve(shards + 1);
    for (std::size_t s = 0; s < shards; ++s) {
        std::vector<Analyzer *> lane;
        lane.reserve(replicas[s].size());
        for (auto &replica : replicas[s])
            lane.push_back(replica.get());
        std::string name = "shard." + std::to_string(s);
        std::unique_ptr<LaneMetrics> lane_metrics;
        if (metrics)
            lane_metrics = std::make_unique<LaneMetrics>(
                LaneMetrics::forLane(*metrics, prefix + "." + name,
                                     lane));
        workers.push_back(std::make_unique<LaneWorker>(
            std::move(name), queue_batches, lanes, std::move(lane),
            options.columnar, std::move(lane_metrics)));
    }
    LaneWorker *order_lane = nullptr;
    if (!in_order.empty()) {
        std::unique_ptr<LaneMetrics> lane_metrics;
        if (metrics)
            lane_metrics = std::make_unique<LaneMetrics>(
                LaneMetrics::forLane(*metrics, prefix + ".inorder",
                                     in_order));
        workers.push_back(std::make_unique<LaneWorker>(
            "inorder", queue_batches, lanes, in_order,
            options.columnar, std::move(lane_metrics)));
        order_lane = workers.back().get();
    }

    std::unique_ptr<Watchdog> watchdog;
    if (options.watchdog_stall_ms)
        watchdog =
            std::make_unique<Watchdog>(workers, options.watchdog_stall_ms);

    // Ingest. Both paths read batches, scatter by volume hash, and
    // feed the lanes; reads from ingest lane k only ever touch
    // queue(k) of each worker, preserving the SPSC invariant.
    //
    // produceFrom drives one producer over one source into lane @p k.
    auto produceFrom = [&](TraceSource &input, std::size_t k,
                           obs::Counter *lane_records,
                           obs::Counter *lane_batches) {
        std::vector<Batch> pending(shards);
        Batch batch;
        batch.reserve(options.batch_size);
        while (input.nextColumns(batch, options.batch_size)) {
            if (lane_records) {
                lane_records->add(batch.size());
                lane_batches->increment();
            }
            if (order_lane) {
                // Copy before the run partition below is built, so the
                // in-order lane's copy carries no cached indices.
                order_lane->queue(k).push(batch);
                order_lane->noteDepth();
            }
            // Scatter whole volume runs: one shard hash and one bulk
            // gather-append per volume per batch, instead of per
            // request. A volume's rows stay in arrival order inside
            // each appended run and runs from successive source
            // batches append in time order, so every shard still sees
            // each of its volumes in timestamp order.
            const auto &runs = batch.volumeRuns();
            const std::uint32_t *order = batch.order().data();
            for (const auto &run : runs) {
                std::size_t s = mix64(run.volume) % shards;
                pending[s].appendRows(batch, order + run.begin,
                                      run.end - run.begin);
                if (pending[s].size() >= options.batch_size) {
                    workers[s]->queue(k).push(std::move(pending[s]));
                    workers[s]->noteDepth();
                    pending[s] = Batch();
                }
            }
        }
        for (std::size_t s = 0; s < shards; ++s) {
            if (!pending[s].empty()) {
                workers[s]->queue(k).push(std::move(pending[s]));
                workers[s]->noteDepth();
            }
        }
    };

    if (partitions.empty()) {
        // Single producer: this thread reads and scatters into lane 0.
        try {
            obs::ScopedTimer ingest_timer(
                nullptr,
                metrics ? &metrics->counter(prefix + ".ingest_ns")
                        : nullptr);
            produceFrom(source, 0, nullptr, nullptr);
        } catch (...) {
            for (auto &worker : workers)
                worker->abandon();
            throw;
        }
    } else {
        // Multi-lane: one producer thread per partition. Each producer
        // closes its own lane's queues on exit (success or failure) so
        // consumers can always advance past its lane; a producer
        // failure is a source failure — rethrown below even in
        // degraded mode, after every thread is joined.
        obs::ScopedTimer ingest_timer(
            nullptr, metrics ? &metrics->counter(prefix + ".ingest_ns")
                             : nullptr);
        std::vector<std::exception_ptr> producer_errors(lanes);
        std::vector<std::thread> producers;
        producers.reserve(lanes);
        for (std::size_t k = 0; k < lanes; ++k) {
            obs::Counter *lane_records = nullptr;
            obs::Counter *lane_batches = nullptr;
            obs::Counter *lane_ns = nullptr;
            if (metrics) {
                std::string lane_prefix =
                    prefix + ".ingest.lane." + std::to_string(k);
                lane_records = &metrics->counter(lane_prefix + ".records");
                lane_batches = &metrics->counter(lane_prefix + ".batches");
                lane_ns = &metrics->counter(lane_prefix + ".ns");
            }
            producers.emplace_back([&, k, lane_records, lane_batches,
                                    lane_ns] {
                try {
                    obs::ScopedTimer lane_timer(nullptr, lane_ns);
                    produceFrom(*partitions[k], k, lane_records,
                                lane_batches);
                } catch (...) {
                    producer_errors[k] = std::current_exception();
                }
                // Close (not abort) this lane everywhere: consumers
                // must drain what was delivered and then move on.
                for (auto &worker : workers)
                    worker->queue(k).close();
            });
        }
        for (auto &producer : producers)
            producer.join();
        std::exception_ptr producer_error;
        for (auto &error : producer_errors)
            if (error && !producer_error)
                producer_error = error;
        if (producer_error) {
            for (auto &worker : workers)
                worker->abandon();
            std::rethrow_exception(producer_error);
        }
    }

    // Join every worker before surfacing any single failure, so no
    // thread outlives this call.
    std::exception_ptr error;
    std::vector<bool> lane_ok(workers.size(), true);
    for (std::size_t i = 0; i < workers.size(); ++i) {
        std::exception_ptr lane_error = workers[i]->finish();
        LaneStatus lane{workers[i]->name(), true, ""};
        if (lane_error) {
            lane.ok = false;
            lane.error = describeError(lane_error);
            lane_ok[i] = false;
            if (!error)
                error = lane_error;
        }
        status.lanes.push_back(std::move(lane));
    }
    if (watchdog)
        watchdog->stop();

    if (error) {
        // Containment boundary: in degraded mode a failed lane's
        // replicas are simply excluded from the merge below; otherwise
        // the first failure rethrows exactly as before.
        if (!options.degraded_ok)
            std::rethrow_exception(error);
        status.degraded = true;
    }

    // Merge the shard replicas back into the caller's analyzers, then
    // finalize everything in the caller's order. Failed lanes are
    // skipped: their replicas may be mid-update and their data is
    // already lost.
    {
        obs::ScopedTimer merge_timer(
            nullptr,
            metrics ? &metrics->counter(prefix + ".merge_ns") : nullptr);
        for (std::size_t i = 0; i < shardable.size(); ++i)
            for (std::size_t s = 0; s < shards; ++s)
                if (lane_ok[s])
                    shardable[i]->mergeFrom(*replicas[s][i]);
    }
    for (Analyzer *analyzer : analyzers) {
        if (!options.finalize)
            break; // snapshot emission: keep pre-finalize state
        obs::ScopedTimer timer(
            nullptr, metrics ? &metrics->counter("analyzer." +
                                                 analyzer->name() +
                                                 ".finalize_ns")
                             : nullptr);
        if (!options.degraded_ok) {
            analyzer->finalize();
            continue;
        }
        // An in-order analyzer that failed mid-consume may fail its
        // finalize too; in degraded mode that is contained like any
        // other lane failure.
        try {
            analyzer->finalize();
        } catch (const std::exception &err) {
            status.degraded = true;
            status.lanes.push_back(LaneStatus{
                "finalize." + analyzer->name(), false, err.what()});
        }
    }
    if (status.degraded && metrics)
        metrics->counter(prefix + ".degraded_runs").increment();
    return status;
}

} // namespace cbs
