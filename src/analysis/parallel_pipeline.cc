#include "analysis/parallel_pipeline.h"

#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/spsc_queue.h"
#include "obs/metrics.h"

namespace cbs {
namespace {

using Batch = std::vector<IoRequest>;
using BatchQueue = SpscQueue<Batch>;

/**
 * Observability instruments of one consumer lane. All sinks live in
 * the caller's MetricsRegistry; a lane without metrics holds none and
 * its worker runs the original untimed loop.
 */
struct LaneMetrics
{
    obs::Counter *records = nullptr;  //!< requests consumed
    obs::Counter *batches = nullptr;  //!< batches consumed
    obs::Counter *idle_ns = nullptr;  //!< time blocked on an empty queue
    obs::Counter *full_waits = nullptr; //!< producer stalls on this lane
    obs::Gauge *queue_depth = nullptr;  //!< batches queued (approx)
    /** Per-analyzer batch-time sinks, parallel to the lane's set. */
    std::vector<obs::Histogram *> analyzer_ns;

    /** Register the lane's instruments under @p lane (e.g.
     *  "parallel.shard.3"), sharing analyzer histograms by name. */
    static LaneMetrics
    forLane(obs::MetricsRegistry &registry, const std::string &lane,
            const std::vector<Analyzer *> &analyzers)
    {
        LaneMetrics m;
        m.records = &registry.counter(lane + ".records");
        m.batches = &registry.counter(lane + ".batches");
        m.idle_ns = &registry.counter(lane + ".idle_ns");
        m.full_waits = &registry.counter(lane + ".queue_full_waits");
        m.queue_depth = &registry.gauge(lane + ".queue_depth");
        m.analyzer_ns.reserve(analyzers.size());
        for (Analyzer *analyzer : analyzers)
            m.analyzer_ns.push_back(&registry.histogram(
                "analyzer." + analyzer->name() + ".batch_ns"));
        return m;
    }
};

/**
 * One consumer thread: pops batches off a bounded queue and feeds an
 * analyzer set. Used both for the per-shard replica workers and for
 * the in-order lane. On failure it records the exception and keeps
 * draining, so the producer can never block forever on a full queue.
 */
class LaneWorker
{
  public:
    LaneWorker(std::size_t queue_batches,
               std::vector<Analyzer *> analyzers,
               std::unique_ptr<LaneMetrics> metrics = nullptr)
        : queue_(queue_batches), analyzers_(std::move(analyzers)),
          metrics_(std::move(metrics))
    {
        thread_ = std::thread([this] { run(); });
    }

    BatchQueue &queue() { return queue_; }

    /** Close the queue, join, and surface any worker exception. */
    void
    finish()
    {
        queue_.close();
        thread_.join();
        noteQueueTotals();
        if (error_)
            std::rethrow_exception(error_);
    }

    /** Join without rethrowing (teardown after another failure). */
    void
    abandon()
    {
        queue_.close();
        if (thread_.joinable())
            thread_.join();
        noteQueueTotals();
    }

    bool finished() const { return !thread_.joinable(); }

    /** Producer-side depth sample after a push (null-safe). */
    void
    noteDepth()
    {
        if (metrics_)
            metrics_->queue_depth->set(
                static_cast<std::int64_t>(queue_.size()));
    }

  private:
    void
    run()
    {
        Batch batch;
        for (;;) {
            bool got;
            if (metrics_) {
                obs::ScopedTimer idle(nullptr, metrics_->idle_ns);
                got = queue_.pop(batch);
            } else {
                got = queue_.pop(batch);
            }
            if (!got)
                break;
            if (error_)
                continue; // drain so the producer never blocks
            try {
                if (metrics_) {
                    metrics_->records->add(batch.size());
                    metrics_->batches->increment();
                    for (std::size_t i = 0; i < analyzers_.size();
                         ++i) {
                        obs::ScopedTimer timer(
                            metrics_->analyzer_ns[i]);
                        for (const IoRequest &req : batch)
                            analyzers_[i]->consume(req);
                    }
                } else {
                    for (const IoRequest &req : batch)
                        for (Analyzer *analyzer : analyzers_)
                            analyzer->consume(req);
                }
            } catch (...) {
                error_ = std::current_exception();
            }
        }
    }

    /** Fold the queue's cumulative stall count into the registry. */
    void
    noteQueueTotals()
    {
        if (!metrics_ || totals_noted_)
            return;
        totals_noted_ = true;
        metrics_->full_waits->add(queue_.fullWaits());
        metrics_->queue_depth->set(0);
    }

    BatchQueue queue_;
    std::vector<Analyzer *> analyzers_;
    std::unique_ptr<LaneMetrics> metrics_;
    bool totals_noted_ = false;
    std::thread thread_;
    std::exception_ptr error_;
};

} // namespace

void
runPipelineParallel(TraceSource &source,
                    const std::vector<Analyzer *> &analyzers,
                    const ParallelOptions &options)
{
    std::size_t shards = options.shards
                             ? options.shards
                             : std::thread::hardware_concurrency();
    if (shards == 0)
        shards = 1;
    CBS_EXPECT(shards <= 256, "shard count " << shards
                                             << " is unreasonable");
    CBS_EXPECT(options.batch_size > 0, "batch size must be positive");
    std::size_t queue_batches =
        options.queue_batches ? options.queue_batches : 1;

    // Partition the analyzer set. Order within each partition follows
    // the caller's vector, and finalize happens in the caller's order.
    std::vector<ShardableAnalyzer *> shardable;
    std::vector<Analyzer *> in_order;
    for (Analyzer *analyzer : analyzers) {
        if (auto *s = dynamic_cast<ShardableAnalyzer *>(analyzer))
            shardable.push_back(s);
        else
            in_order.push_back(analyzer);
    }

    // Nothing to parallelize: fall back to the serial pipeline.
    if (shardable.empty() || shards == 1) {
        runPipeline(source, analyzers, options.metrics);
        return;
    }

    obs::MetricsRegistry *metrics = options.metrics;
    if (metrics) {
        metrics->gauge("parallel.shards")
            .set(static_cast<std::int64_t>(shards));
        metrics->gauge("parallel.batch_size")
            .set(static_cast<std::int64_t>(options.batch_size));
        metrics->gauge("parallel.queue_batches")
            .set(static_cast<std::int64_t>(queue_batches));
        metrics->counter("parallel.runs").increment();
    }

    // Per-shard analyzer replicas.
    std::vector<std::vector<std::unique_ptr<ShardableAnalyzer>>> replicas(
        shards);
    for (std::size_t s = 0; s < shards; ++s) {
        replicas[s].reserve(shardable.size());
        for (ShardableAnalyzer *analyzer : shardable)
            replicas[s].push_back(analyzer->clone());
    }

    std::vector<std::unique_ptr<LaneWorker>> workers;
    workers.reserve(shards + 1);
    for (std::size_t s = 0; s < shards; ++s) {
        std::vector<Analyzer *> lane;
        lane.reserve(replicas[s].size());
        for (auto &replica : replicas[s])
            lane.push_back(replica.get());
        std::unique_ptr<LaneMetrics> lane_metrics;
        if (metrics)
            lane_metrics = std::make_unique<LaneMetrics>(
                LaneMetrics::forLane(*metrics,
                                     "parallel.shard." +
                                         std::to_string(s),
                                     lane));
        workers.push_back(std::make_unique<LaneWorker>(
            queue_batches, std::move(lane), std::move(lane_metrics)));
    }
    LaneWorker *order_lane = nullptr;
    if (!in_order.empty()) {
        std::unique_ptr<LaneMetrics> lane_metrics;
        if (metrics)
            lane_metrics = std::make_unique<LaneMetrics>(
                LaneMetrics::forLane(*metrics, "parallel.inorder",
                                     in_order));
        workers.push_back(std::make_unique<LaneWorker>(
            queue_batches, in_order, std::move(lane_metrics)));
        order_lane = workers.back().get();
    }

    // Ingest: read batches, scatter by volume hash, feed the lanes.
    try {
        obs::ScopedTimer ingest_timer(
            nullptr,
            metrics ? &metrics->counter("parallel.ingest_ns") : nullptr);
        std::vector<Batch> pending(shards);
        for (auto &p : pending)
            p.reserve(options.batch_size);
        Batch batch;
        batch.reserve(options.batch_size);
        while (source.nextBatch(batch, options.batch_size)) {
            if (order_lane) {
                order_lane->queue().push(batch); // copy: full stream
                order_lane->noteDepth();
            }
            for (const IoRequest &req : batch) {
                std::size_t s = mix64(req.volume) % shards;
                pending[s].push_back(req);
                if (pending[s].size() >= options.batch_size) {
                    workers[s]->queue().push(std::move(pending[s]));
                    workers[s]->noteDepth();
                    pending[s] = Batch();
                    pending[s].reserve(options.batch_size);
                }
            }
        }
        for (std::size_t s = 0; s < shards; ++s) {
            if (!pending[s].empty()) {
                workers[s]->queue().push(std::move(pending[s]));
                workers[s]->noteDepth();
            }
        }
    } catch (...) {
        for (auto &worker : workers)
            worker->abandon();
        throw;
    }

    // Join every worker before rethrowing any single failure, so no
    // thread outlives this call.
    std::exception_ptr error;
    for (auto &worker : workers) {
        try {
            worker->finish();
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);

    // Merge the shard replicas back into the caller's analyzers, then
    // finalize everything in the caller's order.
    {
        obs::ScopedTimer merge_timer(
            nullptr,
            metrics ? &metrics->counter("parallel.merge_ns") : nullptr);
        for (std::size_t i = 0; i < shardable.size(); ++i)
            for (std::size_t s = 0; s < shards; ++s)
                shardable[i]->mergeFrom(*replicas[s][i]);
    }
    for (Analyzer *analyzer : analyzers) {
        obs::ScopedTimer timer(
            nullptr, metrics ? &metrics->counter("analyzer." +
                                                 analyzer->name() +
                                                 ".finalize_ns")
                             : nullptr);
        analyzer->finalize();
    }
}

} // namespace cbs
