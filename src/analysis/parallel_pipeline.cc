#include "analysis/parallel_pipeline.h"

#include <exception>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/spsc_queue.h"

namespace cbs {
namespace {

using Batch = std::vector<IoRequest>;
using BatchQueue = SpscQueue<Batch>;

/**
 * One consumer thread: pops batches off a bounded queue and feeds an
 * analyzer set. Used both for the per-shard replica workers and for
 * the in-order lane. On failure it records the exception and keeps
 * draining, so the producer can never block forever on a full queue.
 */
class LaneWorker
{
  public:
    LaneWorker(std::size_t queue_batches,
               std::vector<Analyzer *> analyzers)
        : queue_(queue_batches), analyzers_(std::move(analyzers))
    {
        thread_ = std::thread([this] { run(); });
    }

    BatchQueue &queue() { return queue_; }

    /** Close the queue, join, and surface any worker exception. */
    void
    finish()
    {
        queue_.close();
        thread_.join();
        if (error_)
            std::rethrow_exception(error_);
    }

    /** Join without rethrowing (teardown after another failure). */
    void
    abandon()
    {
        queue_.close();
        if (thread_.joinable())
            thread_.join();
    }

    bool finished() const { return !thread_.joinable(); }

  private:
    void
    run()
    {
        Batch batch;
        while (queue_.pop(batch)) {
            if (error_)
                continue; // drain so the producer never blocks
            try {
                for (const IoRequest &req : batch)
                    for (Analyzer *analyzer : analyzers_)
                        analyzer->consume(req);
            } catch (...) {
                error_ = std::current_exception();
            }
        }
    }

    BatchQueue queue_;
    std::vector<Analyzer *> analyzers_;
    std::thread thread_;
    std::exception_ptr error_;
};

} // namespace

void
runPipelineParallel(TraceSource &source,
                    const std::vector<Analyzer *> &analyzers,
                    const ParallelOptions &options)
{
    std::size_t shards = options.shards
                             ? options.shards
                             : std::thread::hardware_concurrency();
    if (shards == 0)
        shards = 1;
    CBS_EXPECT(shards <= 256, "shard count " << shards
                                             << " is unreasonable");
    CBS_EXPECT(options.batch_size > 0, "batch size must be positive");
    std::size_t queue_batches =
        options.queue_batches ? options.queue_batches : 1;

    // Partition the analyzer set. Order within each partition follows
    // the caller's vector, and finalize happens in the caller's order.
    std::vector<ShardableAnalyzer *> shardable;
    std::vector<Analyzer *> in_order;
    for (Analyzer *analyzer : analyzers) {
        if (auto *s = dynamic_cast<ShardableAnalyzer *>(analyzer))
            shardable.push_back(s);
        else
            in_order.push_back(analyzer);
    }

    // Nothing to parallelize: fall back to the serial pipeline.
    if (shardable.empty() || shards == 1) {
        runPipeline(source, analyzers);
        return;
    }

    // Per-shard analyzer replicas.
    std::vector<std::vector<std::unique_ptr<ShardableAnalyzer>>> replicas(
        shards);
    for (std::size_t s = 0; s < shards; ++s) {
        replicas[s].reserve(shardable.size());
        for (ShardableAnalyzer *analyzer : shardable)
            replicas[s].push_back(analyzer->clone());
    }

    std::vector<std::unique_ptr<LaneWorker>> workers;
    workers.reserve(shards + 1);
    for (std::size_t s = 0; s < shards; ++s) {
        std::vector<Analyzer *> lane;
        lane.reserve(replicas[s].size());
        for (auto &replica : replicas[s])
            lane.push_back(replica.get());
        workers.push_back(
            std::make_unique<LaneWorker>(queue_batches, std::move(lane)));
    }
    LaneWorker *order_lane = nullptr;
    if (!in_order.empty()) {
        workers.push_back(
            std::make_unique<LaneWorker>(queue_batches, in_order));
        order_lane = workers.back().get();
    }

    // Ingest: read batches, scatter by volume hash, feed the lanes.
    try {
        std::vector<Batch> pending(shards);
        for (auto &p : pending)
            p.reserve(options.batch_size);
        Batch batch;
        batch.reserve(options.batch_size);
        while (source.nextBatch(batch, options.batch_size)) {
            if (order_lane)
                order_lane->queue().push(batch); // copy: full stream
            for (const IoRequest &req : batch) {
                std::size_t s = mix64(req.volume) % shards;
                pending[s].push_back(req);
                if (pending[s].size() >= options.batch_size) {
                    workers[s]->queue().push(std::move(pending[s]));
                    pending[s] = Batch();
                    pending[s].reserve(options.batch_size);
                }
            }
        }
        for (std::size_t s = 0; s < shards; ++s) {
            if (!pending[s].empty())
                workers[s]->queue().push(std::move(pending[s]));
        }
    } catch (...) {
        for (auto &worker : workers)
            worker->abandon();
        throw;
    }

    // Join every worker before rethrowing any single failure, so no
    // thread outlives this call.
    std::exception_ptr error;
    for (auto &worker : workers) {
        try {
            worker->finish();
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);

    // Merge the shard replicas back into the caller's analyzers, then
    // finalize everything in the caller's order.
    for (std::size_t i = 0; i < shardable.size(); ++i)
        for (std::size_t s = 0; s < shards; ++s)
            shardable[i]->mergeFrom(*replicas[s][i]);
    for (Analyzer *analyzer : analyzers)
        analyzer->finalize();
}

} // namespace cbs
