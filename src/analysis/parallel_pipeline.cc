#include "analysis/parallel_pipeline.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/spsc_queue.h"
#include "obs/metrics.h"

namespace cbs {
namespace {

using Batch = std::vector<IoRequest>;
using BatchQueue = SpscQueue<Batch>;

/**
 * Observability instruments of one consumer lane. All sinks live in
 * the caller's MetricsRegistry; a lane without metrics holds none and
 * its worker runs the original untimed loop.
 */
struct LaneMetrics
{
    obs::Counter *records = nullptr;  //!< requests consumed
    obs::Counter *batches = nullptr;  //!< batches consumed
    obs::Counter *idle_ns = nullptr;  //!< time blocked on an empty queue
    obs::Counter *full_waits = nullptr; //!< producer stalls on this lane
    obs::Gauge *queue_depth = nullptr;  //!< batches queued (approx)
    obs::Counter *watchdog_stalls = nullptr; //!< stall flags raised
    obs::Gauge *failed = nullptr;       //!< 1 when the lane failed
    /** Per-analyzer batch-time sinks, parallel to the lane's set. */
    std::vector<obs::Histogram *> analyzer_ns;

    /** Register the lane's instruments under @p lane (e.g.
     *  "parallel.shard.3"), sharing analyzer histograms by name. */
    static LaneMetrics
    forLane(obs::MetricsRegistry &registry, const std::string &lane,
            const std::vector<Analyzer *> &analyzers)
    {
        LaneMetrics m;
        m.records = &registry.counter(lane + ".records");
        m.batches = &registry.counter(lane + ".batches");
        m.idle_ns = &registry.counter(lane + ".idle_ns");
        m.full_waits = &registry.counter(lane + ".queue_full_waits");
        m.queue_depth = &registry.gauge(lane + ".queue_depth");
        m.watchdog_stalls = &registry.counter(lane + ".watchdog_stalls");
        m.failed = &registry.gauge(lane + ".failed");
        m.analyzer_ns.reserve(analyzers.size());
        for (Analyzer *analyzer : analyzers)
            m.analyzer_ns.push_back(&registry.histogram(
                "analyzer." + analyzer->name() + ".batch_ns"));
        return m;
    }
};

/**
 * One consumer thread: pops batches off a bounded queue and feeds an
 * analyzer set. Used both for the per-shard replica workers and for
 * the in-order lane. On failure it records the exception, aborts the
 * queue (so the producer's pushes to this lane turn into no-ops), and
 * keeps draining, so the producer can never block forever on a full
 * queue.
 */
class LaneWorker
{
  public:
    LaneWorker(std::string name, std::size_t queue_batches,
               std::vector<Analyzer *> analyzers,
               std::unique_ptr<LaneMetrics> metrics = nullptr)
        : name_(std::move(name)), queue_(queue_batches),
          analyzers_(std::move(analyzers)), metrics_(std::move(metrics))
    {
        thread_ = std::thread([this] { run(); });
    }

    const std::string &name() const { return name_; }

    BatchQueue &queue() { return queue_; }

    /** Close the queue, join, and return the worker's exception (null
     *  on success). The caller decides whether to rethrow or contain. */
    std::exception_ptr
    finish()
    {
        queue_.close();
        thread_.join();
        noteQueueTotals();
        if (metrics_)
            metrics_->failed->set(error_ ? 1 : 0);
        return error_;
    }

    /** Join without rethrowing (teardown after another failure). */
    void
    abandon()
    {
        queue_.close();
        if (thread_.joinable())
            thread_.join();
        noteQueueTotals();
    }

    bool finished() const { return !thread_.joinable(); }

    /** Producer-side depth sample after a push (null-safe). */
    void
    noteDepth()
    {
        if (metrics_)
            metrics_->queue_depth->set(
                static_cast<std::int64_t>(queue_.size()));
    }

    /** Batches popped so far — the watchdog's progress signal. */
    std::uint64_t
    batchesConsumed() const
    {
        return batches_consumed_.load(std::memory_order_relaxed);
    }

    /** Watchdog verdict: queued work but no progress this interval. */
    void
    noteStall()
    {
        stall_flags_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_)
            metrics_->watchdog_stalls->increment();
    }

    std::uint64_t
    stallFlags() const
    {
        return stall_flags_.load(std::memory_order_relaxed);
    }

  private:
    void
    run()
    {
        Batch batch;
        for (;;) {
            bool got;
            if (metrics_) {
                obs::ScopedTimer idle(nullptr, metrics_->idle_ns);
                got = queue_.pop(batch);
            } else {
                got = queue_.pop(batch);
            }
            if (!got)
                break;
            batches_consumed_.fetch_add(1, std::memory_order_relaxed);
            if (error_)
                continue; // drain so the producer never blocks
            try {
                if (metrics_) {
                    metrics_->records->add(batch.size());
                    metrics_->batches->increment();
                    for (std::size_t i = 0; i < analyzers_.size();
                         ++i) {
                        obs::ScopedTimer timer(
                            metrics_->analyzer_ns[i]);
                        for (const IoRequest &req : batch)
                            analyzers_[i]->consume(req);
                    }
                } else {
                    for (const IoRequest &req : batch)
                        for (Analyzer *analyzer : analyzers_)
                            analyzer->consume(req);
                }
            } catch (...) {
                error_ = std::current_exception();
                // Aborting turns the producer's future pushes to this
                // lane into dropped no-ops: a failed shard stops
                // consuming CPU, and a producer blocked on this full
                // queue wakes immediately.
                queue_.abort();
            }
        }
    }

    /** Fold the queue's cumulative stall count into the registry. */
    void
    noteQueueTotals()
    {
        if (!metrics_ || totals_noted_)
            return;
        totals_noted_ = true;
        metrics_->full_waits->add(queue_.fullWaits());
        metrics_->queue_depth->set(0);
    }

    std::string name_;
    BatchQueue queue_;
    std::vector<Analyzer *> analyzers_;
    std::unique_ptr<LaneMetrics> metrics_;
    bool totals_noted_ = false;
    std::atomic<std::uint64_t> batches_consumed_{0};
    std::atomic<std::uint64_t> stall_flags_{0};
    std::thread thread_;
    std::exception_ptr error_;
};

/** One line of human-readable failure text from an exception_ptr. */
std::string
describeError(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &err) {
        return err.what();
    } catch (...) {
        return "unknown error";
    }
}

/**
 * The stall watchdog: a sampling thread that flags lanes with queued
 * batches but no consumption progress between samples. Flags feed
 * metrics only — they are timing-dependent by nature and must never
 * influence analysis results.
 */
class Watchdog
{
  public:
    Watchdog(std::vector<std::unique_ptr<LaneWorker>> &workers,
             std::uint64_t interval_ms)
        : workers_(workers), interval_ms_(interval_ms)
    {
        thread_ = std::thread([this] { run(); });
    }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

    ~Watchdog() { stop(); }

  private:
    void
    run()
    {
        std::vector<std::uint64_t> last(workers_.size());
        for (std::size_t i = 0; i < workers_.size(); ++i)
            last[i] = workers_[i]->batchesConsumed();
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(lock,
                             std::chrono::milliseconds(interval_ms_),
                             [&] { return stop_; })) {
            for (std::size_t i = 0; i < workers_.size(); ++i) {
                LaneWorker &worker = *workers_[i];
                std::uint64_t now = worker.batchesConsumed();
                if (now == last[i] && worker.queue().size() > 0 &&
                    !worker.finished())
                    worker.noteStall();
                last[i] = now;
            }
        }
    }

    std::vector<std::unique_ptr<LaneWorker>> &workers_;
    std::uint64_t interval_ms_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

PipelineRunStatus
runPipelineParallel(TraceSource &source,
                    const std::vector<Analyzer *> &analyzers,
                    const ParallelOptions &options)
{
    std::size_t shards = options.shards
                             ? options.shards
                             : std::thread::hardware_concurrency();
    if (shards == 0)
        shards = 1;
    CBS_EXPECT(shards <= 256, "shard count " << shards
                                             << " is unreasonable");
    CBS_EXPECT(options.batch_size > 0, "batch size must be positive");
    std::size_t queue_batches =
        options.queue_batches ? options.queue_batches : 1;

    // Partition the analyzer set. Order within each partition follows
    // the caller's vector, and finalize happens in the caller's order.
    std::vector<ShardableAnalyzer *> shardable;
    std::vector<Analyzer *> in_order;
    for (Analyzer *analyzer : analyzers) {
        if (auto *s = dynamic_cast<ShardableAnalyzer *>(analyzer))
            shardable.push_back(s);
        else
            in_order.push_back(analyzer);
    }

    PipelineRunStatus status;
    status.degraded_enabled = options.degraded_ok;

    // Nothing to parallelize: fall back to the serial pipeline. There
    // are no lanes to contain here, so failures rethrow even in
    // degraded mode (a failed serial run has no partial result worth
    // reporting).
    if (shardable.empty() || shards == 1) {
        runPipeline(source, analyzers, options.metrics);
        status.lanes.push_back(LaneStatus{"serial", true, ""});
        return status;
    }

    obs::MetricsRegistry *metrics = options.metrics;
    if (metrics) {
        metrics->gauge("parallel.shards")
            .set(static_cast<std::int64_t>(shards));
        metrics->gauge("parallel.batch_size")
            .set(static_cast<std::int64_t>(options.batch_size));
        metrics->gauge("parallel.queue_batches")
            .set(static_cast<std::int64_t>(queue_batches));
        metrics->counter("parallel.runs").increment();
        metrics->counter("parallel.degraded_runs");
    }

    // Per-shard analyzer replicas.
    std::vector<std::vector<std::unique_ptr<ShardableAnalyzer>>> replicas(
        shards);
    for (std::size_t s = 0; s < shards; ++s) {
        replicas[s].reserve(shardable.size());
        for (ShardableAnalyzer *analyzer : shardable)
            replicas[s].push_back(analyzer->clone());
    }

    std::vector<std::unique_ptr<LaneWorker>> workers;
    workers.reserve(shards + 1);
    for (std::size_t s = 0; s < shards; ++s) {
        std::vector<Analyzer *> lane;
        lane.reserve(replicas[s].size());
        for (auto &replica : replicas[s])
            lane.push_back(replica.get());
        std::string name = "shard." + std::to_string(s);
        std::unique_ptr<LaneMetrics> lane_metrics;
        if (metrics)
            lane_metrics = std::make_unique<LaneMetrics>(
                LaneMetrics::forLane(*metrics, "parallel." + name,
                                     lane));
        workers.push_back(std::make_unique<LaneWorker>(
            std::move(name), queue_batches, std::move(lane),
            std::move(lane_metrics)));
    }
    LaneWorker *order_lane = nullptr;
    if (!in_order.empty()) {
        std::unique_ptr<LaneMetrics> lane_metrics;
        if (metrics)
            lane_metrics = std::make_unique<LaneMetrics>(
                LaneMetrics::forLane(*metrics, "parallel.inorder",
                                     in_order));
        workers.push_back(std::make_unique<LaneWorker>(
            "inorder", queue_batches, in_order,
            std::move(lane_metrics)));
        order_lane = workers.back().get();
    }

    std::unique_ptr<Watchdog> watchdog;
    if (options.watchdog_stall_ms)
        watchdog =
            std::make_unique<Watchdog>(workers, options.watchdog_stall_ms);

    // Ingest: read batches, scatter by volume hash, feed the lanes.
    try {
        obs::ScopedTimer ingest_timer(
            nullptr,
            metrics ? &metrics->counter("parallel.ingest_ns") : nullptr);
        std::vector<Batch> pending(shards);
        for (auto &p : pending)
            p.reserve(options.batch_size);
        Batch batch;
        batch.reserve(options.batch_size);
        while (source.nextBatch(batch, options.batch_size)) {
            if (order_lane) {
                order_lane->queue().push(batch); // copy: full stream
                order_lane->noteDepth();
            }
            for (const IoRequest &req : batch) {
                std::size_t s = mix64(req.volume) % shards;
                pending[s].push_back(req);
                if (pending[s].size() >= options.batch_size) {
                    workers[s]->queue().push(std::move(pending[s]));
                    workers[s]->noteDepth();
                    pending[s] = Batch();
                    pending[s].reserve(options.batch_size);
                }
            }
        }
        for (std::size_t s = 0; s < shards; ++s) {
            if (!pending[s].empty()) {
                workers[s]->queue().push(std::move(pending[s]));
                workers[s]->noteDepth();
            }
        }
    } catch (...) {
        for (auto &worker : workers)
            worker->abandon();
        throw;
    }

    // Join every worker before surfacing any single failure, so no
    // thread outlives this call.
    std::exception_ptr error;
    std::vector<bool> lane_ok(workers.size(), true);
    for (std::size_t i = 0; i < workers.size(); ++i) {
        std::exception_ptr lane_error = workers[i]->finish();
        LaneStatus lane{workers[i]->name(), true, ""};
        if (lane_error) {
            lane.ok = false;
            lane.error = describeError(lane_error);
            lane_ok[i] = false;
            if (!error)
                error = lane_error;
        }
        status.lanes.push_back(std::move(lane));
    }
    if (watchdog)
        watchdog->stop();

    if (error) {
        // Containment boundary: in degraded mode a failed lane's
        // replicas are simply excluded from the merge below; otherwise
        // the first failure rethrows exactly as before.
        if (!options.degraded_ok)
            std::rethrow_exception(error);
        status.degraded = true;
    }

    // Merge the shard replicas back into the caller's analyzers, then
    // finalize everything in the caller's order. Failed lanes are
    // skipped: their replicas may be mid-update and their data is
    // already lost.
    {
        obs::ScopedTimer merge_timer(
            nullptr,
            metrics ? &metrics->counter("parallel.merge_ns") : nullptr);
        for (std::size_t i = 0; i < shardable.size(); ++i)
            for (std::size_t s = 0; s < shards; ++s)
                if (lane_ok[s])
                    shardable[i]->mergeFrom(*replicas[s][i]);
    }
    for (Analyzer *analyzer : analyzers) {
        obs::ScopedTimer timer(
            nullptr, metrics ? &metrics->counter("analyzer." +
                                                 analyzer->name() +
                                                 ".finalize_ns")
                             : nullptr);
        if (!options.degraded_ok) {
            analyzer->finalize();
            continue;
        }
        // An in-order analyzer that failed mid-consume may fail its
        // finalize too; in degraded mode that is contained like any
        // other lane failure.
        try {
            analyzer->finalize();
        } catch (const std::exception &err) {
            status.degraded = true;
            status.lanes.push_back(LaneStatus{
                "finalize." + analyzer->name(), false, err.what()});
        }
    }
    if (status.degraded && metrics)
        metrics->counter("parallel.degraded_runs").increment();
    return status;
}

} // namespace cbs
