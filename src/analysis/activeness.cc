#include "analysis/activeness.h"

#include <algorithm>
#include <bit>
#include <string>

#include "common/error.h"

namespace cbs {

bool
ActivenessAnalyzer::Bits::set(std::size_t idx)
{
    std::size_t word = idx / 64;
    if (word >= words.size())
        words.resize(word + 1, 0);
    std::uint64_t mask = std::uint64_t{1} << (idx % 64);
    if (words[word] & mask)
        return false;
    words[word] |= mask;
    return true;
}

void
ActivenessAnalyzer::Bits::merge(const Bits &other)
{
    if (other.words.size() > words.size())
        words.resize(other.words.size(), 0);
    for (std::size_t w = 0; w < other.words.size(); ++w)
        words[w] |= other.words[w];
}

std::size_t
ActivenessAnalyzer::Bits::popcount() const
{
    std::size_t total = 0;
    for (std::uint64_t word : words)
        total += static_cast<std::size_t>(std::popcount(word));
    return total;
}

ActivenessAnalyzer::ActivenessAnalyzer(TimeUs interval, TimeUs duration)
    : interval_(interval),
      interval_count_(static_cast<std::size_t>(
          (duration + interval - 1) / interval))
{
    CBS_EXPECT(interval > 0, "interval must be positive");
    CBS_EXPECT(interval_count_ > 0, "duration must be positive");
    for (auto &series : series_)
        series.assign(interval_count_, 0);
}

void
ActivenessAnalyzer::consume(const IoRequest &req)
{
    std::size_t idx =
        static_cast<std::size_t>(req.timestamp / interval_);
    CBS_EXPECT(idx < interval_count_,
               "request at " << req.timestamp
                             << " us beyond the configured duration");
    State &state = states_[req.volume];
    state.bits[kActive].set(idx);
    Kind op_kind = req.isRead() ? kReadActive : kWriteActive;
    state.bits[op_kind].set(idx);
}

void
ActivenessAnalyzer::finalize()
{
    // Both result families come from the per-volume interval bitmaps:
    // the per-interval series (one pass summing set bits per index)
    // and the per-volume active-period CDFs (one popcount per kind).
    for (auto &series : series_)
        series.assign(interval_count_, 0);
    for (const State &state : states_) {
        if (!state.bits[kActive].any())
            continue;
        for (std::size_t kind = 0; kind < 3; ++kind) {
            const Bits &bits = state.bits[kind];
            periods_[kind].add(static_cast<double>(bits.popcount()));
            for (std::size_t w = 0; w < bits.words.size(); ++w) {
                std::uint64_t word = bits.words[w];
                while (word) {
                    std::size_t idx =
                        w * 64 + static_cast<std::size_t>(
                                     std::countr_zero(word));
                    if (idx < interval_count_)
                        ++series_[kind][idx];
                    word &= word - 1;
                }
            }
        }
    }
}

std::unique_ptr<ShardableAnalyzer>
ActivenessAnalyzer::clone() const
{
    return std::make_unique<ActivenessAnalyzer>(
        interval_, interval_ * static_cast<TimeUs>(interval_count_));
}

void
ActivenessAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<ActivenessAnalyzer>(shard);
    CBS_EXPECT(interval_ == other.interval_,
               "merging activeness analyzers with different intervals");
    interval_count_ = std::max(interval_count_, other.interval_count_);
    states_.mergeFrom(other.states_,
                      [](State &own, const State &theirs) {
                          for (std::size_t kind = 0; kind < 3; ++kind)
                              own.bits[kind].merge(theirs.bits[kind]);
                      });
}

void
ActivenessAnalyzer::serialize(snap::Sink &sink) const
{
    sink.u64(interval_);
    sink.vu64(interval_count_);
    states_.serialize(sink, [](snap::Sink &s, const State &state) {
        for (const Bits &bits : state.bits) {
            s.vu64(bits.words.size());
            for (std::uint64_t word : bits.words)
                s.u64(word);
        }
    });
}

void
ActivenessAnalyzer::deserialize(snap::Source &source)
{
    TimeUs interval = source.u64();
    CBS_EXPECT(interval == interval_,
               "activeness snapshot interval "
                   << interval << " us != configured " << interval_
                   << " us");
    // A partial's duration covers only its slice of the trace; the
    // receiving analyzer keeps the larger interval count.
    interval_count_ = std::max(
        interval_count_,
        static_cast<std::size_t>(source.vu64()));
    states_.deserialize(source, [](snap::Source &s, State &state) {
        for (Bits &bits : state.bits) {
            std::uint64_t n = s.vu64();
            if (n > s.remaining() / 8)
                s.fail("activeness bitmap word count " +
                       std::to_string(n) +
                       " exceeds the remaining payload");
            bits.words.assign(static_cast<std::size_t>(n), 0);
            for (std::uint64_t &word : bits.words)
                word = s.u64();
        }
    });
    source.expectEnd();
}

double
ActivenessAnalyzer::fractionActiveAtLeast(Kind kind,
                                          double fraction) const
{
    const Ecdf &cdf = periods_[kind];
    if (cdf.empty())
        return 0.0;
    double threshold = fraction * static_cast<double>(interval_count_);
    // Fraction of volumes with active intervals >= threshold.
    return 1.0 - cdf.at(threshold - 1e-9);
}

} // namespace cbs
