#include "analysis/activeness.h"

#include <bit>

#include "common/error.h"

namespace cbs {

bool
ActivenessAnalyzer::Bits::set(std::size_t idx)
{
    std::size_t word = idx / 64;
    if (word >= words.size())
        words.resize(word + 1, 0);
    std::uint64_t mask = std::uint64_t{1} << (idx % 64);
    if (words[word] & mask)
        return false;
    words[word] |= mask;
    return true;
}

std::size_t
ActivenessAnalyzer::Bits::popcount() const
{
    std::size_t total = 0;
    for (std::uint64_t word : words)
        total += static_cast<std::size_t>(std::popcount(word));
    return total;
}

ActivenessAnalyzer::ActivenessAnalyzer(TimeUs interval, TimeUs duration)
    : interval_(interval),
      interval_count_(static_cast<std::size_t>(
          (duration + interval - 1) / interval))
{
    CBS_EXPECT(interval > 0, "interval must be positive");
    CBS_EXPECT(interval_count_ > 0, "duration must be positive");
    for (auto &series : series_)
        series.assign(interval_count_, 0);
}

void
ActivenessAnalyzer::consume(const IoRequest &req)
{
    std::size_t idx =
        static_cast<std::size_t>(req.timestamp / interval_);
    CBS_EXPECT(idx < interval_count_,
               "request at " << req.timestamp
                             << " us beyond the configured duration");
    State &state = states_[req.volume];
    if (state.bits[kActive].set(idx))
        ++series_[kActive][idx];
    Kind op_kind = req.isRead() ? kReadActive : kWriteActive;
    if (state.bits[op_kind].set(idx))
        ++series_[op_kind][idx];
}

void
ActivenessAnalyzer::finalize()
{
    for (const State &state : states_) {
        if (!state.bits[kActive].any())
            continue;
        for (std::size_t kind = 0; kind < 3; ++kind)
            periods_[kind].add(
                static_cast<double>(state.bits[kind].popcount()));
    }
}

double
ActivenessAnalyzer::fractionActiveAtLeast(Kind kind,
                                          double fraction) const
{
    const Ecdf &cdf = periods_[kind];
    if (cdf.empty())
        return 0.0;
    double threshold = fraction * static_cast<double>(interval_count_);
    // Fraction of volumes with active intervals >= threshold.
    return 1.0 - cdf.at(threshold - 1e-9);
}

} // namespace cbs
