#include "analysis/cache_mrc.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace cbs {

namespace {

/** Hits at capacity <= c from a distance histogram (index d-1). */
std::uint64_t
hitsWithin(const std::vector<std::uint64_t> &cumulative, std::uint64_t c)
{
    if (c == 0 || cumulative.empty())
        return 0;
    std::size_t idx = static_cast<std::size_t>(
        std::min<std::uint64_t>(c, cumulative.size()));
    return cumulative[idx - 1];
}

std::vector<std::uint64_t>
prefixSums(const std::vector<std::uint64_t> &hist)
{
    std::vector<std::uint64_t> cumulative(hist.size());
    std::uint64_t running = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) {
        running += hist[d];
        cumulative[d] = running;
    }
    return cumulative;
}

void
serializeHist(snap::Sink &sink, const std::vector<std::uint64_t> &hist)
{
    // Trim trailing zeros so the bytes do not depend on the vector's
    // growth schedule.
    std::size_t len = hist.size();
    while (len > 0 && hist[len - 1] == 0)
        --len;
    sink.vu64(len);
    for (std::size_t d = 0; d < len; ++d)
        sink.vu64(hist[d]);
}

void
deserializeHist(snap::Source &source, std::vector<std::uint64_t> &hist)
{
    std::uint64_t len = source.vu64();
    if (len > source.remaining())
        source.fail("cache_mrc histogram length " + std::to_string(len) +
                    " exceeds the remaining payload");
    hist.assign(static_cast<std::size_t>(len), 0);
    for (std::uint64_t d = 0; d < len; ++d)
        hist[static_cast<std::size_t>(d)] = source.vu64();
}

} // namespace

const std::vector<double> &
CacheMrcAnalyzer::curveGrid()
{
    // Log-spaced 1-3-10 grid down to 0.01% of the WSS; the last point
    // (the whole WSS) pins the compulsory-miss floor.
    static const std::vector<double> kGrid = {
        0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0};
    return kGrid;
}

CacheMrcAnalyzer::CacheMrcAnalyzer(std::vector<double> size_fractions,
                                   std::uint64_t block_size,
                                   double shards_rate,
                                   std::size_t shards_budget)
    : fractions_(std::move(size_fractions)),
      block_size_(block_size),
      shards_rate_(shards_rate),
      shards_budget_(shards_budget)
{
    CBS_EXPECT(!fractions_.empty(), "need at least one size fraction");
    for (double f : fractions_)
        CBS_EXPECT(f > 0 && f <= 1, "size fraction out of (0,1]: " << f);
    CBS_EXPECT(block_size > 0, "block size must be positive");
    CBS_EXPECT(shards_rate_ >= 0.0 && shards_rate_ <= 1.0,
               "shards rate out of [0,1]: " << shards_rate_);
    CBS_EXPECT(exact() || shards_rate_ > 0.0,
               "shards rate must be positive");
    CBS_EXPECT(shards_budget_ == 0 || !exact(),
               "a shards budget needs a shards rate");
    read_ratios_.resize(fractions_.size());
    write_ratios_.resize(fractions_.size());
    curve_read_.resize(curveGrid().size());
    curve_write_.resize(curveGrid().size());
}

void
CacheMrcAnalyzer::initVolume(VolumeMrc &vm)
{
    vm.init = true;
    if (exact())
        // The analyzer keeps its own op-split histograms, so the
        // tracker's combined one would be dead weight.
        vm.tracker.emplace(/*record_histogram=*/false);
    else
        vm.sampler.emplace(shards_rate_, shards_budget_);
}

void
CacheMrcAnalyzer::tally(VolumeMrc &vm, bool is_write,
                        std::uint64_t distance, std::uint64_t count)
{
    if (distance == ReuseDistance::kInfinite) {
        (is_write ? vm.write_cold : vm.read_cold) += count;
    } else {
        std::vector<std::uint64_t> &hist =
            is_write ? vm.write_hist : vm.read_hist;
        if (hist.size() < distance)
            hist.resize(std::max<std::size_t>(
                static_cast<std::size_t>(distance), hist.size() * 2));
        hist[static_cast<std::size_t>(distance - 1)] += count;
    }
    (is_write ? vm.writes : vm.reads) += count;
}

void
CacheMrcAnalyzer::recordRange(VolumeMrc &vm, bool is_write, BlockNo first,
                              BlockNo last)
{
    if (vm.tracker) {
        // Exact mode: the run-coalescing fast path — sequential
        // sub-runs cost one Fenwick query for the whole sub-run.
        vm.tracker->accessRun(
            first, last - first + 1,
            [&](std::uint64_t distance, std::uint64_t count) {
                tally(vm, is_write, distance, count);
            });
        return;
    }
    for (BlockNo block = first; block <= last; ++block)
        recordBlock(vm, is_write, block);
}

void
CacheMrcAnalyzer::recordBlock(VolumeMrc &vm, bool is_write, BlockNo block)
{
    if (vm.tracker) {
        tally(vm, is_write, vm.tracker->access(block), 1);
        return;
    }
    ShardsReuseDistance::Sample sample = vm.sampler->sampledAccess(block);
    if (!sample.sampled)
        return;
    std::uint64_t distance = sample.distance;
    if (distance != ReuseDistance::kInfinite)
        // Scale into full-stream blocks with the rate in effect for
        // this access, so threshold drops never rescale history.
        distance = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(
                   static_cast<double>(distance) / sample.rate)));
    tally(vm, is_write, distance, 1);
}

void
CacheMrcAnalyzer::consume(const IoRequest &req)
{
    VolumeMrc &vm = volumes_[req.volume];
    if (!vm.init)
        initVolume(vm);
    const bool is_write = req.isWrite();
    recordRange(vm, is_write, req.firstBlock(block_size_),
                req.lastBlock(block_size_));
}

void
CacheMrcAnalyzer::consumeBatch(std::span<const IoRequest> batch)
{
    for (const IoRequest &req : batch)
        CacheMrcAnalyzer::consume(req);
}

void
CacheMrcAnalyzer::consumeColumns(const RequestBatch &batch)
{
    // Volume-major kernel: the volume's tracker is hoisted out of the
    // row loop. Per-volume timestamp order is all the stack distances
    // depend on (state is keyed strictly per volume), which is exactly
    // what volumeRuns() preserves.
    const std::uint8_t *is_write = batch.isWrite();
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        VolumeMrc &vm = volumes_[run.volume];
        if (!vm.init)
            initVolume(vm);
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            std::uint32_t i = order[k];
            const bool write = is_write[i] != 0;
            recordRange(vm, write, batch.firstBlockAt(i, block_size_),
                        batch.lastBlockAt(i, block_size_));
        }
    }
}

std::unique_ptr<ShardableAnalyzer>
CacheMrcAnalyzer::clone() const
{
    return std::make_unique<CacheMrcAnalyzer>(
        fractions_, block_size_, shards_rate_, shards_budget_);
}

void
CacheMrcAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<CacheMrcAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_ &&
                   other.fractions_ == fractions_ &&
                   other.shards_rate_ == shards_rate_ &&
                   other.shards_budget_ == shards_budget_,
               "cannot merge cache_mrc shards with different "
               "configurations");
    volumes_.mergeFrom(
        other.volumes_, [](VolumeMrc &own, const VolumeMrc &theirs) {
            if (!theirs.init)
                return;
            CBS_CHECK(!own.init); // volumes are shard-disjoint
            own = theirs;
        });
}

void
CacheMrcAnalyzer::harvestVolume(const VolumeMrc &vm)
{
    std::uint64_t wss = 0;
    if (vm.tracker)
        wss = vm.tracker->uniqueKeys();
    else if (vm.sampler)
        wss = vm.sampler->estimatedUniqueKeys();
    if (wss == 0)
        return;

    const std::vector<std::uint64_t> read_cum = prefixSums(vm.read_hist);
    const std::vector<std::uint64_t> write_cum =
        prefixSums(vm.write_hist);
    auto add_point = [&](double fraction, ExactQuantiles &read_out,
                         ExactQuantiles &write_out) {
        // The two-pass SimPass capacity formula, verbatim, so the
        // integer hit/miss splits — and therefore the reported
        // doubles — match it bit for bit.
        std::uint64_t capacity = static_cast<std::uint64_t>(
            std::max(1.0, fraction * static_cast<double>(wss)));
        if (vm.reads) {
            std::uint64_t misses =
                vm.reads - hitsWithin(read_cum, capacity);
            read_out.add(static_cast<double>(misses) /
                         static_cast<double>(vm.reads));
        }
        if (vm.writes) {
            std::uint64_t misses =
                vm.writes - hitsWithin(write_cum, capacity);
            write_out.add(static_cast<double>(misses) /
                          static_cast<double>(vm.writes));
        }
    };
    for (std::size_t i = 0; i < fractions_.size(); ++i)
        add_point(fractions_[i], read_ratios_[i], write_ratios_[i]);
    const std::vector<double> &grid = curveGrid();
    for (std::size_t i = 0; i < grid.size(); ++i)
        add_point(grid[i], curve_read_[i], curve_write_[i]);
}

void
CacheMrcAnalyzer::finalize()
{
    // Volume order, independent of shard count: per-volume state is a
    // pure function of that volume's access sequence, so parallel runs
    // finalize bit-identically to serial ones.
    for (const VolumeMrc &vm : volumes_) {
        if (vm.init)
            harvestVolume(vm);
    }
}

void
CacheMrcAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(block_size_);
    sink.f64(shards_rate_);
    sink.vu64(shards_budget_);
    sink.vu64(fractions_.size());
    for (double f : fractions_)
        sink.f64(f);
    volumes_.serialize(sink, [](snap::Sink &s, const VolumeMrc &vm) {
        s.u8(vm.init ? 1 : 0);
        if (!vm.init)
            return;
        s.vu64(vm.reads);
        s.vu64(vm.writes);
        s.vu64(vm.read_cold);
        s.vu64(vm.write_cold);
        serializeHist(s, vm.read_hist);
        serializeHist(s, vm.write_hist);
        if (vm.tracker)
            vm.tracker->serializeTo(s);
        else
            vm.sampler->serializeTo(s);
    });
}

void
CacheMrcAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t block_size = source.vu64();
    CBS_EXPECT(block_size == block_size_,
               "cache_mrc snapshot block size "
                   << block_size << " != configured " << block_size_);
    double rate = source.f64();
    CBS_EXPECT(rate == shards_rate_,
               "cache_mrc snapshot shards rate "
                   << rate << " != configured " << shards_rate_);
    std::uint64_t budget = source.vu64();
    CBS_EXPECT(budget == shards_budget_,
               "cache_mrc snapshot shards budget "
                   << budget << " != configured " << shards_budget_);
    std::uint64_t n_fractions = source.vu64();
    CBS_EXPECT(n_fractions == fractions_.size(),
               "cache_mrc snapshot has " << n_fractions
                                         << " fractions, configured "
                                         << fractions_.size());
    for (double f : fractions_) {
        double got = source.f64();
        CBS_EXPECT(got == f, "cache_mrc snapshot fraction "
                                 << got << " != configured " << f);
    }
    volumes_.deserialize(source, [&](snap::Source &s, VolumeMrc &vm) {
        std::uint8_t init = s.u8();
        if (init > 1)
            s.fail("unknown cache_mrc volume flag");
        if (init == 0)
            return;
        initVolume(vm);
        vm.reads = s.vu64();
        vm.writes = s.vu64();
        vm.read_cold = s.vu64();
        vm.write_cold = s.vu64();
        deserializeHist(s, vm.read_hist);
        deserializeHist(s, vm.write_hist);
        if (vm.tracker)
            vm.tracker->deserializeFrom(s);
        else
            vm.sampler->deserializeFrom(s);
    });
    source.expectEnd();
}

const ExactQuantiles &
CacheMrcAnalyzer::readMissRatios(std::size_t i) const
{
    CBS_EXPECT(i < read_ratios_.size(), "fraction index out of range");
    return read_ratios_[i];
}

const ExactQuantiles &
CacheMrcAnalyzer::writeMissRatios(std::size_t i) const
{
    CBS_EXPECT(i < write_ratios_.size(), "fraction index out of range");
    return write_ratios_[i];
}

} // namespace cbs
