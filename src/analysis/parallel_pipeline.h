/**
 * @file
 * runPipelineParallel: the sharded multi-threaded analysis pipeline.
 *
 * The paper's metrics are nearly all keyed per volume, so the classic
 * trace-analytics recipe applies: hash each request's volume id to one
 * of N shards, analyze the shards in parallel on per-shard analyzer
 * replicas, and merge the replicas back into the caller's analyzers at
 * the end (the shard/merge design follows the scalable cluster-trace
 * characterization pipelines, e.g. arXiv:2205.11582).
 *
 * Dataflow (single-producer, the default):
 *
 *   source --batches--> [ingest thread] --scatter by hash(volume)-->
 *       N bounded SPSC queues --> N workers (ShardableAnalyzer clones)
 *                     \--copies--> in-order lane (plain Analyzers)
 *
 * With ParallelOptions::ingest_lanes > 1 and a SplittableSource, the
 * source is split(n) into contiguous time-ordered partitions and each
 * partition gets its own producer thread. Every consumer then owns one
 * SPSC queue per producer (preserving the single-producer invariant)
 * and drains them in partition order, so each consumer still sees its
 * requests in timestamp order and results are unchanged.
 *
 * Analyzers that implement ShardableAnalyzer are replicated per shard;
 * the rest run on a dedicated in-order lane thread that sees the full
 * stream in its original global timestamp order, so their results are
 * identical to a serial run by construction. Because a volume's
 * requests all hash to the same shard and each queue preserves order,
 * every replica also sees its volumes' requests in timestamp order —
 * which is all the per-volume analyzers require — and after merging,
 * results match the serial pipeline exactly.
 */

#ifndef CBS_ANALYSIS_PARALLEL_PIPELINE_H
#define CBS_ANALYSIS_PARALLEL_PIPELINE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace cbs {

/** Tuning knobs of runPipelineParallel. */
struct ParallelOptions
{
    /** Number of analyzer shards; 0 = std::thread::hardware_concurrency. */
    std::size_t shards = 0;

    /** Requests per scatter batch (amortizes queue synchronization). */
    std::size_t batch_size = 4096;

    /**
     * Columnar execution (the default): ingest via nextColumns into
     * SoA RequestBatches, scatter whole volume runs per batch (one
     * shard hash per run instead of per request), and dispatch
     * consumeColumns on the workers, engaging the hot analyzers'
     * kernels. Off = workers materialize rows and dispatch the legacy
     * consumeBatch. Results are byte-identical either way.
     */
    bool columnar = true;

    /** Bounded capacity of each shard queue, in batches. Together with
     *  batch_size this caps buffered memory at roughly
     *  shards * queue_batches * batch_size * sizeof(IoRequest). */
    std::size_t queue_batches = 8;

    /**
     * Ingestion lanes: producer threads reading the source in
     * parallel. Takes effect only when the source implements
     * SplittableSource (CBT2 files, VectorSource) — it is split(n)
     * into contiguous time-ordered partitions, one producer thread
     * per partition, each scattering into its own SPSC queue on every
     * consumer; consumers drain lane queues in partition order, so
     * per-volume order (shard lanes) and global order (the in-order
     * lane) still hold and results stay byte-identical to a serial
     * run. Non-splittable sources always use the single-producer
     * path. 1 (default) = single producer; 0 = one lane per shard.
     */
    std::size_t ingest_lanes = 1;

    /**
     * Optional observability sink. When set, the run records per-shard
     * throughput (`parallel.shard.<i>.records`), queue backpressure
     * (`.queue_full_waits`, `.queue_depth`), worker idle time
     * (`.idle_ns`), per-analyzer timings (`analyzer.<name>.batch_ns`,
     * shared across shard replicas), the in-order lane's equivalents
     * under `parallel.inorder.*`, and — under multi-lane ingestion —
     * per-producer totals under `parallel.ingest.lane.<k>.*` plus the
     * `parallel.ingest_lanes` gauge. Must outlive the call. Null (the
     * default) costs one pointer check per batch.
     */
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * Root of every metric key the run registers (gauges, counters,
     * and lane instruments alike). The default keeps the documented
     * `parallel.*` namespace; multi-pass drivers that run the pipeline
     * more than once per analysis (CacheMissAnalyzer::
     * runTwoPassParallel) disambiguate their passes with e.g.
     * "parallel.pass1" / "parallel.pass2" so per-pass throughput and
     * backpressure stay separable (see docs/observability.md).
     * Analyzer timing keys (`analyzer.<name>.*`) are not affected.
     */
    std::string metrics_prefix = "parallel";

    /**
     * Degraded mode: contain a shard failure instead of failing the
     * run. When an analyzer throws on one lane, that lane's queue is
     * aborted and drained, its analyzer replicas are excluded from the
     * merge, and the run completes with the failure recorded in the
     * returned PipelineRunStatus instead of being rethrown. Source
     * (ingest) failures are still fatal — there is no data left to
     * analyze. Default off: any failure rethrows as before.
     */
    bool degraded_ok = false;

    /**
     * Watchdog sample interval: every watchdog_stall_ms the run checks
     * each lane for a stall (queued batches but no consumption
     * progress since the last sample) and counts flags in
     * `parallel.<lane>.watchdog_stalls`. 0 (the default) disables the
     * watchdog. Flags are timing-dependent, so they live in metrics
     * only, never in analysis results.
     */
    std::uint64_t watchdog_stall_ms = 0;

    /**
     * Run finalize() after the replica merge (the default). Snapshot
     * emission (--emit-partial) turns this off: the merged bundle is
     * serialized pre-finalize, exactly what mergeFrom expects on the
     * other side. The merge itself always runs.
     */
    bool finalize = true;
};

/** Terminal state of one pipeline lane. */
struct LaneStatus
{
    std::string lane;  //!< "shard.<i>", "inorder", or "serial"
    bool ok = true;
    std::string error; //!< failure description when !ok
};

/** What a pipeline run did: returned by runPipelineParallel. */
struct PipelineRunStatus
{
    /** Mirrors ParallelOptions::degraded_ok for the run. */
    bool degraded_enabled = false;

    /** True when at least one lane failed and was contained. */
    bool degraded = false;

    /** Per-lane terminal states, shard order then in-order lane. */
    std::vector<LaneStatus> lanes;
};

/**
 * Run one pass of @p source through all @p analyzers using @p options
 * worth of parallelism, then finalize each analyzer (in vector order,
 * like runPipeline). Equivalent to runPipeline(source, analyzers) in
 * results; faster when several ShardableAnalyzers are attached and
 * cores are available.
 *
 * Exceptions thrown by the source or by any analyzer (on any thread)
 * are rethrown on the calling thread after the workers are joined —
 * unless ParallelOptions::degraded_ok is set, in which case analyzer
 * failures are contained per lane and reported in the returned
 * PipelineRunStatus (source failures always rethrow).
 */
PipelineRunStatus
runPipelineParallel(TraceSource &source,
                    const std::vector<Analyzer *> &analyzers,
                    const ParallelOptions &options = {});

} // namespace cbs

#endif // CBS_ANALYSIS_PARALLEL_PIPELINE_H
