#include "analysis/volume_activity.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace cbs {

void
ActiveDaysAnalyzer::consume(const IoRequest &req)
{
    std::uint64_t day = req.timestamp / units::day;
    CBS_EXPECT(day < 64, "trace longer than 64 days");
    day_bits_[req.volume] |= std::uint64_t{1} << day;
}

void
ActiveDaysAnalyzer::finalize()
{
    for (std::uint64_t bits : day_bits_) {
        if (bits)
            cdf_.add(static_cast<double>(std::popcount(bits)));
    }
}

double
ActiveDaysAnalyzer::fractionWithDays(int days) const
{
    if (cdf_.empty())
        return 0.0;
    return cdf_.at(days) - cdf_.at(days - 1);
}

WriteReadRatioAnalyzer::WriteReadRatioAnalyzer(double ratio_cap)
    : ratio_cap_(ratio_cap)
{
    CBS_EXPECT(ratio_cap > 0, "ratio cap must be positive");
}

void
WriteReadRatioAnalyzer::consume(const IoRequest &req)
{
    Counts &counts = counts_[req.volume];
    if (req.isRead()) {
        ++counts.reads;
        ++total_reads_;
    } else {
        ++counts.writes;
        ++total_writes_;
    }
}

void
WriteReadRatioAnalyzer::finalize()
{
    for (const Counts &counts : counts_) {
        if (counts.reads == 0 && counts.writes == 0)
            continue;
        double ratio = counts.reads
                           ? static_cast<double>(counts.writes) /
                                 static_cast<double>(counts.reads)
                           : ratio_cap_;
        cdf_.add(std::min(ratio, ratio_cap_));
    }
}

double
WriteReadRatioAnalyzer::fractionAbove(double threshold) const
{
    return cdf_.empty() ? 0.0 : 1.0 - cdf_.at(threshold);
}

} // namespace cbs
