#include "analysis/volume_activity.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace cbs {

void
ActiveDaysAnalyzer::consume(const IoRequest &req)
{
    std::uint64_t day = req.timestamp / units::day;
    CBS_EXPECT(day < 64, "trace longer than 64 days");
    day_bits_[req.volume] |= std::uint64_t{1} << day;
}

void
ActiveDaysAnalyzer::finalize()
{
    for (std::uint64_t bits : day_bits_) {
        if (bits)
            cdf_.add(static_cast<double>(std::popcount(bits)));
    }
}

std::unique_ptr<ShardableAnalyzer>
ActiveDaysAnalyzer::clone() const
{
    return std::make_unique<ActiveDaysAnalyzer>();
}

void
ActiveDaysAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<ActiveDaysAnalyzer>(shard);
    day_bits_.mergeFrom(other.day_bits_,
                        [](std::uint64_t &own,
                           const std::uint64_t &theirs) {
                            own |= theirs;
                        });
}

void
ActiveDaysAnalyzer::serialize(snap::Sink &sink) const
{
    day_bits_.serialize(sink, [](snap::Sink &s, std::uint64_t bits) {
        s.vu64(bits);
    });
}

void
ActiveDaysAnalyzer::deserialize(snap::Source &source)
{
    day_bits_.deserialize(source,
                          [](snap::Source &s, std::uint64_t &bits) {
                              bits = s.vu64();
                          });
    source.expectEnd();
}

double
ActiveDaysAnalyzer::fractionWithDays(int days) const
{
    if (cdf_.empty())
        return 0.0;
    return cdf_.at(days) - cdf_.at(days - 1);
}

WriteReadRatioAnalyzer::WriteReadRatioAnalyzer(double ratio_cap)
    : ratio_cap_(ratio_cap)
{
    CBS_EXPECT(ratio_cap > 0, "ratio cap must be positive");
}

void
WriteReadRatioAnalyzer::consume(const IoRequest &req)
{
    Counts &counts = counts_[req.volume];
    if (req.isRead()) {
        ++counts.reads;
        ++total_reads_;
    } else {
        ++counts.writes;
        ++total_writes_;
    }
}

void
WriteReadRatioAnalyzer::finalize()
{
    for (const Counts &counts : counts_) {
        if (counts.reads == 0 && counts.writes == 0)
            continue;
        double ratio = counts.reads
                           ? static_cast<double>(counts.writes) /
                                 static_cast<double>(counts.reads)
                           : ratio_cap_;
        cdf_.add(std::min(ratio, ratio_cap_));
    }
}

double
WriteReadRatioAnalyzer::fractionAbove(double threshold) const
{
    return cdf_.empty() ? 0.0 : 1.0 - cdf_.at(threshold);
}

std::unique_ptr<ShardableAnalyzer>
WriteReadRatioAnalyzer::clone() const
{
    return std::make_unique<WriteReadRatioAnalyzer>(ratio_cap_);
}

void
WriteReadRatioAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<WriteReadRatioAnalyzer>(shard);
    counts_.mergeFrom(other.counts_,
                      [](Counts &own, const Counts &theirs) {
                          own.reads += theirs.reads;
                          own.writes += theirs.writes;
                      });
    total_reads_ += other.total_reads_;
    total_writes_ += other.total_writes_;
}

void
WriteReadRatioAnalyzer::serialize(snap::Sink &sink) const
{
    sink.f64(ratio_cap_);
    sink.vu64(total_reads_);
    sink.vu64(total_writes_);
    counts_.serialize(sink, [](snap::Sink &s, const Counts &counts) {
        s.vu64(counts.reads);
        s.vu64(counts.writes);
    });
}

void
WriteReadRatioAnalyzer::deserialize(snap::Source &source)
{
    double ratio_cap = source.f64();
    CBS_EXPECT(ratio_cap == ratio_cap_,
               "wr_ratio snapshot ratio cap " << ratio_cap
                                              << " != configured "
                                              << ratio_cap_);
    total_reads_ = source.vu64();
    total_writes_ = source.vu64();
    counts_.deserialize(source, [](snap::Source &s, Counts &counts) {
        counts.reads = s.vu64();
        counts.writes = s.vu64();
    });
    source.expectEnd();
}

} // namespace cbs
