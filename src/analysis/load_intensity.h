/**
 * @file
 * LoadIntensityAnalyzer: average / peak intensities and burstiness
 * ratios (Findings 1-3; Fig. 5, Fig. 6, Table II).
 *
 * The paper defines a volume's average intensity as its request count
 * divided by the span between its first and last requests, and its peak
 * intensity as the maximum request count over fixed windows (one minute
 * in the paper; configurable here because scaled-down traces need
 * proportionally wider windows, see DESIGN.md §5). The burstiness ratio
 * is peak/average.
 */

#ifndef CBS_ANALYSIS_LOAD_INTENSITY_H
#define CBS_ANALYSIS_LOAD_INTENSITY_H

#include <cstdint>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "common/flat_map.h"
#include "stats/ecdf.h"

namespace cbs {

/** Intensity summary of one volume (or of the whole trace). */
struct IntensityStats
{
    std::uint64_t requests = 0;
    TimeUs first = 0;
    TimeUs last = 0;
    std::uint64_t peak_window_count = 0;

    /** Average intensity in requests/second. */
    double
    avgIntensity() const
    {
        if (requests < 2 || last <= first)
            return 0.0;
        return static_cast<double>(requests) /
               (static_cast<double>(last - first) / 1e6);
    }

    /** Peak intensity in requests/second for the given window. */
    double
    peakIntensity(TimeUs window) const
    {
        return static_cast<double>(peak_window_count) /
               (static_cast<double>(window) / 1e6);
    }

    /** Peak / average ratio; 0 when the average is undefined. */
    double
    burstinessRatio(TimeUs window) const
    {
        double avg = avgIntensity();
        return avg > 0 ? peakIntensity(window) / avg : 0.0;
    }
};

class LoadIntensityAnalyzer : public ShardableAnalyzer
{
  public:
    /** @param peak_window window for peak counting (paper: 1 minute). */
    explicit LoadIntensityAnalyzer(TimeUs peak_window = units::minute);

    void consume(const IoRequest &req) override;
    void finalize() override;
    std::string name() const override { return "load_intensity"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    TimeUs peakWindow() const { return peak_window_; }

    /** Per-volume intensity stats (volumes in id order, touched only). */
    std::vector<std::pair<VolumeId, IntensityStats>> volumeStats() const;

    /** Whole-trace aggregate (all volumes together; Table II). */
    const IntensityStats &overall() const { return overall_; }

    /** CDF of per-volume average intensities (req/s), Fig. 5. */
    const Ecdf &avgIntensities() const { return avg_cdf_; }
    /** CDF of per-volume peak intensities (req/s), Fig. 5. */
    const Ecdf &peakIntensities() const { return peak_cdf_; }
    /** CDF of per-volume burstiness ratios, Fig. 6. */
    const Ecdf &burstinessRatios() const { return burst_cdf_; }

  private:
    struct State
    {
        IntensityStats stats;
        std::uint64_t window_index = 0;
        std::uint64_t window_count = 0;
        bool touched = false;
    };

    void bump(State &state, TimeUs timestamp);
    void bumpOverall(TimeUs timestamp);
    void flushOverallWindow();

    TimeUs peak_window_;
    PerVolume<State> states_;
    State overall_state_;
    /**
     * Whole-trace request count per peak window, flushed from
     * overall_state_'s running window at each window transition. The
     * scalar running-max of the per-volume states cannot be merged
     * across shards (max of per-shard maxima underestimates the max of
     * sums), but per-window counts sum exactly — this is what makes
     * the overall peak shard-mergeable. Cost in the serial path is one
     * hash update per *window*, not per request.
     */
    FlatMap<std::uint64_t> overall_windows_;
    IntensityStats overall_;
    Ecdf avg_cdf_;
    Ecdf peak_cdf_;
    Ecdf burst_cdf_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_LOAD_INTENSITY_H
