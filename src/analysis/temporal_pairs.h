/**
 * @file
 * TemporalPairsAnalyzer: RAW / WAW / RAR / WAR adjacent-request pairs
 * (Findings 12-13; Figs. 14-15, Table V).
 *
 * For every block, each access forms a pair with the immediately
 * preceding access to the same block; the pair's class is
 * <current op>-after-<previous op> and its value is the elapsed time.
 * Pairs are block-granular, matching the paper's per-block definition.
 */

#ifndef CBS_ANALYSIS_TEMPORAL_PAIRS_H
#define CBS_ANALYSIS_TEMPORAL_PAIRS_H

#include <array>
#include <cstdint>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/block_state_map.h"
#include "stats/log_histogram.h"

namespace cbs {

/** Pair classes, indexed as (current op, previous op). */
enum class PairKind : std::size_t
{
    RAW = 0, //!< read after write
    WAW = 1, //!< write after write
    RAR = 2, //!< read after read
    WAR = 3, //!< write after read
};

/** Printable name of a pair class. */
const char *pairKindName(PairKind kind);

class TemporalPairsAnalyzer : public ShardableAnalyzer
{
  public:
    explicit TemporalPairsAnalyzer(
        std::uint64_t block_size = kDefaultBlockSize);

    void consume(const IoRequest &req) override;
    void consumeColumns(const RequestBatch &batch) override;
    std::string name() const override { return "temporal_pairs"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** Number of pairs of the given class. */
    std::uint64_t count(PairKind kind) const;

    /** Elapsed-time histogram (µs) of the given class. */
    const LogHistogram &times(PairKind kind) const;

  private:
    // Per-block state packs the last-access timestamp (µs, 63 bits)
    // and the last op (top bit) into one u64; the zero value is
    // reserved for "never accessed" by storing timestamp+1.
    static constexpr std::uint64_t kOpBit = std::uint64_t{1} << 63;

    std::uint64_t block_size_;
    BlockStateMap<std::uint64_t> last_;
    std::array<LogHistogram, 4> hists_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_TEMPORAL_PAIRS_H
