#include "analysis/interarrival.h"

#include "common/error.h"

namespace cbs {

InterarrivalAnalyzer::InterarrivalAnalyzer() : global_(7) {}

void
InterarrivalAnalyzer::consume(const IoRequest &req)
{
    State &state = states_[req.volume];
    if (state.touched) {
        CBS_EXPECT(req.timestamp >= state.last,
                   "requests of volume " << req.volume
                                         << " out of order");
        TimeUs gap = req.timestamp - state.last;
        if (!state.hist)
            state.hist = std::make_unique<LogHistogram>(5);
        state.hist->add(gap);
        global_.add(gap);
    }
    state.last = req.timestamp;
    state.touched = true;
}

void
InterarrivalAnalyzer::consumeColumns(const RequestBatch &batch)
{
    // All state is per volume, so the per-run walk hoists one State
    // lookup per run and streams that volume's timestamps through it.
    // No deferred probes here — hoisting is safe.
    const TimeUs *ts = batch.ts();
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        State &state = states_[run.volume];
        TimeUs last = state.last;
        bool touched = state.touched;
        LogHistogram *hist = state.hist.get();
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            TimeUs now = ts[order[k]];
            if (touched) {
                CBS_EXPECT(now >= last, "requests of volume "
                                            << run.volume
                                            << " out of order");
                TimeUs gap = now - last;
                if (!hist) {
                    state.hist = std::make_unique<LogHistogram>(5);
                    hist = state.hist.get();
                }
                hist->add(gap);
                global_.add(gap);
            }
            last = now;
            touched = true;
        }
        state.last = last;
        state.touched = touched;
    }
}

std::unique_ptr<ShardableAnalyzer>
InterarrivalAnalyzer::clone() const
{
    return std::make_unique<InterarrivalAnalyzer>();
}

void
InterarrivalAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<InterarrivalAnalyzer>(shard);
    global_.merge(other.global_);
    states_.mergeFrom(other.states_, [](State &own, const State &theirs) {
        if (!theirs.touched)
            return;
        if (!own.touched) {
            own.touched = true;
            own.last = theirs.last;
            if (theirs.hist)
                own.hist = std::make_unique<LogHistogram>(*theirs.hist);
            return;
        }
        // Same volume on both sides (outside the volume-disjoint
        // contract): the gap across the shard boundary is lost, the
        // per-shard gaps merge exactly.
        own.last = std::max(own.last, theirs.last);
        if (theirs.hist) {
            if (own.hist)
                own.hist->merge(*theirs.hist);
            else
                own.hist = std::make_unique<LogHistogram>(*theirs.hist);
        }
    });
}

void
InterarrivalAnalyzer::serialize(snap::Sink &sink) const
{
    global_.serialize(sink);
    states_.serialize(sink, [](snap::Sink &s, const State &state) {
        s.u64(state.last);
        s.u8(state.touched ? 1 : 0);
        s.u8(state.hist ? 1 : 0);
        if (state.hist)
            state.hist->serialize(s);
    });
}

void
InterarrivalAnalyzer::deserialize(snap::Source &source)
{
    global_.deserialize(source);
    states_.deserialize(source, [](snap::Source &s, State &state) {
        state.last = s.u64();
        state.touched = s.u8() != 0;
        if (s.u8()) {
            state.hist = std::make_unique<LogHistogram>(5);
            state.hist->deserialize(s);
        } else {
            state.hist.reset();
        }
    });
    source.expectEnd();
}

void
InterarrivalAnalyzer::finalize()
{
    for (const State &state : states_) {
        if (!state.hist || state.hist->empty())
            continue;
        for (std::size_t i = 0; i < kPercentiles.size(); ++i)
            groups_[i].add(static_cast<double>(
                state.hist->quantile(kPercentiles[i])));
    }
}

BoxplotSummary
InterarrivalAnalyzer::boxplot(std::size_t i) const
{
    CBS_EXPECT(i < groups_.size(), "percentile group out of range");
    return BoxplotSummary::compute(groups_[i]);
}

} // namespace cbs
