#include "analysis/volume_classes.h"

#include "common/error.h"

namespace cbs {

const char *
volumeClassName(VolumeClass cls)
{
    switch (cls) {
      case VolumeClass::Idle:
        return "idle";
      case VolumeClass::WriteOnlyLog:
        return "write-only-log";
      case VolumeClass::WriteHeavyUpdater:
        return "write-heavy-updater";
      case VolumeClass::ReadMostly:
        return "read-mostly";
      case VolumeClass::Mixed:
        return "mixed";
    }
    CBS_PANIC("unreachable class");
}

VolumeClassifier::VolumeClassifier(std::uint64_t min_requests,
                                   std::uint64_t block_size)
    : min_requests_(min_requests), block_size_(block_size)
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
VolumeClassifier::consume(const IoRequest &req)
{
    VolumeFeatures &features = features_[req.volume];
    if (req.isRead())
        ++features.reads;
    else
        ++features.writes;

    forEachBlock(req, block_size_, [&](BlockNo block) {
        auto [flags, inserted] =
            blocks_.tryEmplace(blockKey(req.volume, block));
        constexpr std::uint8_t kRead = 1;
        constexpr std::uint8_t kWritten = 2;
        constexpr std::uint8_t kUpdated = 4;
        if (req.isRead()) {
            if (!(flags & kRead)) {
                flags |= kRead;
                ++features.read_blocks;
            }
        } else if (!(flags & kWritten)) {
            flags |= kWritten;
            ++features.written_blocks;
        } else if (!(flags & kUpdated)) {
            flags |= kUpdated;
            ++features.updated_blocks;
        }
    });
}

VolumeClass
VolumeClassifier::classify(const VolumeFeatures &features,
                           std::uint64_t min_requests)
{
    if (features.requests() < min_requests)
        return VolumeClass::Idle;
    double wf = features.writeFraction();
    if (wf > 0.95) {
        // Nearly no reads: log-like if mostly one-touch, updater if
        // blocks are rewritten.
        return features.rewriteFraction() < 0.3
                   ? VolumeClass::WriteOnlyLog
                   : VolumeClass::WriteHeavyUpdater;
    }
    if (wf > 0.6)
        return VolumeClass::WriteHeavyUpdater;
    if (wf < 0.35)
        return VolumeClass::ReadMostly;
    return VolumeClass::Mixed;
}

void
VolumeClassifier::finalize()
{
    histogram_ = {};
    features_.forEach([&](VolumeId volume,
                          const VolumeFeatures &features) {
        VolumeClass cls = classify(features, min_requests_);
        classes_[volume] = cls;
        ++histogram_[static_cast<std::size_t>(cls)];
    });
}

VolumeClass
VolumeClassifier::classOf(VolumeId volume) const
{
    if (volume >= classes_.size())
        return VolumeClass::Idle;
    return classes_.at(volume);
}

const VolumeFeatures &
VolumeClassifier::featuresOf(VolumeId volume) const
{
    return features_.at(volume);
}

} // namespace cbs
