/**
 * @file
 * InterarrivalAnalyzer: per-volume inter-arrival time distributions
 * (Finding 4, Fig. 7).
 *
 * For each volume, the gaps between its consecutive requests feed a
 * log-bucketed histogram; at finalize the per-volume 25/50/75/90/95th
 * percentiles are gathered across volumes into one boxplot per
 * percentile group, exactly the presentation of Fig. 7.
 */

#ifndef CBS_ANALYSIS_INTERARRIVAL_H
#define CBS_ANALYSIS_INTERARRIVAL_H

#include <array>
#include <memory>

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "stats/boxplot.h"
#include "stats/exact_quantiles.h"
#include "stats/log_histogram.h"

namespace cbs {

class InterarrivalAnalyzer : public ShardableAnalyzer
{
  public:
    /** The five percentile groups of Fig. 7. */
    static constexpr std::array<double, 5> kPercentiles = {
        0.25, 0.50, 0.75, 0.90, 0.95};

    InterarrivalAnalyzer();

    void consume(const IoRequest &req) override;
    void consumeColumns(const RequestBatch &batch) override;
    void finalize() override;
    std::string name() const override { return "interarrival"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /**
     * Per-volume percentile values (µs) gathered across volumes;
     * index i corresponds to kPercentiles[i].
     */
    const std::array<ExactQuantiles, 5> &groups() const
    {
        return groups_;
    }

    /** Boxplot of percentile group @p i across volumes. */
    BoxplotSummary boxplot(std::size_t i) const;

    /** Global inter-arrival histogram across all volumes (µs). */
    const LogHistogram &global() const { return global_; }

  private:
    struct State
    {
        TimeUs last = 0;
        bool touched = false;
        // Log histograms are a few KiB each; allocate per touched
        // volume only.
        std::unique_ptr<LogHistogram> hist;
    };

    PerVolume<State> states_;
    LogHistogram global_;
    std::array<ExactQuantiles, 5> groups_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_INTERARRIVAL_H
