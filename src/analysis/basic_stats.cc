#include "analysis/basic_stats.h"

#include <algorithm>

#include "common/simd.h"

namespace cbs {

BasicStatsAnalyzer::BasicStatsAnalyzer(std::uint64_t block_size)
    : block_size_(block_size)
{
}

std::unique_ptr<ShardableAnalyzer>
BasicStatsAnalyzer::clone() const
{
    return std::make_unique<BasicStatsAnalyzer>(block_size_);
}

void
BasicStatsAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<BasicStatsAnalyzer>(shard);
    if (other.any_) {
        if (!any_) {
            stats_.first_timestamp = other.stats_.first_timestamp;
            any_ = true;
        } else {
            stats_.first_timestamp = std::min(
                stats_.first_timestamp, other.stats_.first_timestamp);
        }
        stats_.last_timestamp =
            std::max(stats_.last_timestamp, other.stats_.last_timestamp);
    }
    stats_.reads += other.stats_.reads;
    stats_.writes += other.stats_.writes;
    stats_.read_bytes += other.stats_.read_bytes;
    stats_.write_bytes += other.stats_.write_bytes;
    stats_.update_bytes += other.stats_.update_bytes;
    stats_.total_wss_bytes += other.stats_.total_wss_bytes;
    stats_.read_wss_bytes += other.stats_.read_wss_bytes;
    stats_.write_wss_bytes += other.stats_.write_wss_bytes;
    stats_.update_wss_bytes += other.stats_.update_wss_bytes;
    // Shards hold disjoint volumes, so the per-block flag maps union
    // without conflicts and the WSS byte sums above stay exact.
    blocks_.mergeFrom(other.blocks_,
                      [](std::uint8_t &own, const std::uint8_t &theirs) {
                          own |= theirs;
                      });
    seen_volume_.mergeFrom(other.seen_volume_,
                           [](std::uint8_t &own, const std::uint8_t &theirs) {
                               own |= theirs;
                           });
    // Recount instead of summing: exact even if a volume somehow
    // appeared on both sides.
    stats_.volumes = 0;
    for (std::uint8_t seen : seen_volume_)
        stats_.volumes += seen ? 1 : 0;
}

void
BasicStatsAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(block_size_);
    sink.vu64(stats_.volumes);
    sink.vu64(stats_.reads);
    sink.vu64(stats_.writes);
    sink.vu64(stats_.read_bytes);
    sink.vu64(stats_.write_bytes);
    sink.vu64(stats_.update_bytes);
    sink.vu64(stats_.total_wss_bytes);
    sink.vu64(stats_.read_wss_bytes);
    sink.vu64(stats_.write_wss_bytes);
    sink.vu64(stats_.update_wss_bytes);
    sink.u64(stats_.first_timestamp);
    sink.u64(stats_.last_timestamp);
    sink.u8(any_ ? 1 : 0);
    seen_volume_.serialize(sink, [](snap::Sink &s, std::uint8_t seen) {
        s.u8(seen);
    });
    blocks_.serialize(sink, [](snap::Sink &s, std::uint8_t flags) {
        s.u8(flags);
    });
}

void
BasicStatsAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t block_size = source.vu64();
    CBS_EXPECT(block_size == block_size_,
               "basic_stats snapshot block size "
                   << block_size << " != configured " << block_size_);
    stats_.volumes = source.vu64();
    stats_.reads = source.vu64();
    stats_.writes = source.vu64();
    stats_.read_bytes = source.vu64();
    stats_.write_bytes = source.vu64();
    stats_.update_bytes = source.vu64();
    stats_.total_wss_bytes = source.vu64();
    stats_.read_wss_bytes = source.vu64();
    stats_.write_wss_bytes = source.vu64();
    stats_.update_wss_bytes = source.vu64();
    stats_.first_timestamp = source.u64();
    stats_.last_timestamp = source.u64();
    any_ = source.u8() != 0;
    seen_volume_.deserialize(source,
                             [](snap::Source &s, std::uint8_t &seen) {
                                 seen = s.u8();
                             });
    blocks_.deserialize(source,
                        [](snap::Source &s, std::uint8_t &flags) {
                            flags = s.u8();
                        });
    source.expectEnd();
}

void
BasicStatsAnalyzer::consumeBatch(std::span<const IoRequest> batch)
{
    // One virtual call per batch; the qualified calls below devirtualize.
    for (const IoRequest &req : batch)
        BasicStatsAnalyzer::consume(req);
}

void
BasicStatsAnalyzer::consumeColumns(const RequestBatch &batch)
{
    std::size_t n = batch.size();
    if (n == 0)
        return;
    const TimeUs *ts = batch.ts();
    const std::uint32_t *length = batch.length();
    const std::uint8_t *is_write = batch.isWrite();

    // Row-granular tallies straight off the columns. The batch is not
    // globally sorted (shard scatters regroup rows by volume run), so
    // first/last come from an explicit min/max scan — which on an
    // ordered trace is exactly what the row-order path computes.
    TimeUs min_ts = ts[0];
    TimeUs max_ts = ts[0];
    std::uint64_t write_bytes = 0;
    std::uint64_t read_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        min_ts = std::min(min_ts, ts[i]);
        max_ts = std::max(max_ts, ts[i]);
        if (is_write[i])
            write_bytes += length[i];
        else
            read_bytes += length[i];
    }
    std::uint64_t writes = sumBytes01(is_write, n);
    if (!any_) {
        stats_.first_timestamp = min_ts;
        any_ = true;
    } else {
        stats_.first_timestamp =
            std::min(stats_.first_timestamp, min_ts);
    }
    stats_.last_timestamp = std::max(stats_.last_timestamp, max_ts);
    stats_.writes += writes;
    stats_.reads += n - writes;
    stats_.write_bytes += write_bytes;
    stats_.read_bytes += read_bytes;

    // Block-granular tallies: every stat below is a sum of per-block
    // flag transitions, so volume-major probe order gives the same
    // totals as row order. A zero flag byte means "never touched" —
    // the first read or write always sets a bit.
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        std::uint8_t &seen = seen_volume_[run.volume];
        if (!seen) {
            seen = 1;
            ++stats_.volumes;
        }
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            std::uint32_t i = order[k];
            std::uint8_t write = is_write[i];
            blocks_.forEachState(
                run.volume, batch.firstBlockAt(i, block_size_),
                batch.lastBlockAt(i, block_size_),
                [&](std::uint8_t &flags) {
                    if (flags == 0)
                        stats_.total_wss_bytes += block_size_;
                    if (!write) {
                        if (!(flags & kRead)) {
                            flags |= kRead;
                            stats_.read_wss_bytes += block_size_;
                        }
                    } else {
                        if (flags & kWritten) {
                            stats_.update_bytes += block_size_;
                            if (!(flags & kUpdated)) {
                                flags |= kUpdated;
                                stats_.update_wss_bytes +=
                                    block_size_;
                            }
                        } else {
                            flags |= kWritten;
                            stats_.write_wss_bytes += block_size_;
                        }
                    }
                });
        }
    }
}

void
BasicStatsAnalyzer::consume(const IoRequest &req)
{
    if (!any_) {
        stats_.first_timestamp = req.timestamp;
        any_ = true;
    }
    stats_.last_timestamp = std::max(stats_.last_timestamp,
                                     req.timestamp);

    std::uint8_t &seen = seen_volume_[req.volume];
    if (!seen) {
        seen = 1;
        ++stats_.volumes;
    }

    if (req.isRead()) {
        ++stats_.reads;
        stats_.read_bytes += req.length;
    } else {
        ++stats_.writes;
        stats_.write_bytes += req.length;
    }

    blocks_.forEachState(req.volume, req.firstBlock(block_size_),
                         req.lastBlock(block_size_),
                         [&](std::uint8_t &flags) {
        if (flags == 0) // first touch of this block
            stats_.total_wss_bytes += block_size_;
        if (req.isRead()) {
            if (!(flags & kRead)) {
                flags |= kRead;
                stats_.read_wss_bytes += block_size_;
            }
        } else {
            if (flags & kWritten) {
                // An overwrite: update traffic, and the block joins the
                // update working set on its second write.
                stats_.update_bytes += block_size_;
                if (!(flags & kUpdated)) {
                    flags |= kUpdated;
                    stats_.update_wss_bytes += block_size_;
                }
            } else {
                flags |= kWritten;
                stats_.write_wss_bytes += block_size_;
            }
        }
    });
}

} // namespace cbs
