#include "analysis/basic_stats.h"

#include <algorithm>

namespace cbs {

BasicStatsAnalyzer::BasicStatsAnalyzer(std::uint64_t block_size)
    : block_size_(block_size)
{
}

std::unique_ptr<ShardableAnalyzer>
BasicStatsAnalyzer::clone() const
{
    return std::make_unique<BasicStatsAnalyzer>(block_size_);
}

void
BasicStatsAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<BasicStatsAnalyzer>(shard);
    if (other.any_) {
        if (!any_) {
            stats_.first_timestamp = other.stats_.first_timestamp;
            any_ = true;
        } else {
            stats_.first_timestamp = std::min(
                stats_.first_timestamp, other.stats_.first_timestamp);
        }
        stats_.last_timestamp =
            std::max(stats_.last_timestamp, other.stats_.last_timestamp);
    }
    stats_.reads += other.stats_.reads;
    stats_.writes += other.stats_.writes;
    stats_.read_bytes += other.stats_.read_bytes;
    stats_.write_bytes += other.stats_.write_bytes;
    stats_.update_bytes += other.stats_.update_bytes;
    stats_.total_wss_bytes += other.stats_.total_wss_bytes;
    stats_.read_wss_bytes += other.stats_.read_wss_bytes;
    stats_.write_wss_bytes += other.stats_.write_wss_bytes;
    stats_.update_wss_bytes += other.stats_.update_wss_bytes;
    // Shards hold disjoint volumes, so the per-block flag maps union
    // without conflicts and the WSS byte sums above stay exact.
    blocks_.mergeFrom(other.blocks_,
                      [](std::uint8_t &own, const std::uint8_t &theirs) {
                          own |= theirs;
                      });
    seen_volume_.mergeFrom(other.seen_volume_,
                           [](std::uint8_t &own, const std::uint8_t &theirs) {
                               own |= theirs;
                           });
    // Recount instead of summing: exact even if a volume somehow
    // appeared on both sides.
    stats_.volumes = 0;
    for (std::uint8_t seen : seen_volume_)
        stats_.volumes += seen ? 1 : 0;
}

void
BasicStatsAnalyzer::consumeBatch(std::span<const IoRequest> batch)
{
    // One virtual call per batch; the qualified calls below devirtualize.
    for (const IoRequest &req : batch)
        BasicStatsAnalyzer::consume(req);
}

void
BasicStatsAnalyzer::consume(const IoRequest &req)
{
    if (!any_) {
        stats_.first_timestamp = req.timestamp;
        any_ = true;
    }
    stats_.last_timestamp = std::max(stats_.last_timestamp,
                                     req.timestamp);

    std::uint8_t &seen = seen_volume_[req.volume];
    if (!seen) {
        seen = 1;
        ++stats_.volumes;
    }

    if (req.isRead()) {
        ++stats_.reads;
        stats_.read_bytes += req.length;
    } else {
        ++stats_.writes;
        stats_.write_bytes += req.length;
    }

    forEachBlock(req, block_size_, [&](BlockNo block) {
        auto [flags, inserted] =
            blocks_.tryEmplace(blockKey(req.volume, block));
        if (inserted)
            stats_.total_wss_bytes += block_size_;
        if (req.isRead()) {
            if (!(flags & kRead)) {
                flags |= kRead;
                stats_.read_wss_bytes += block_size_;
            }
        } else {
            if (flags & kWritten) {
                // An overwrite: update traffic, and the block joins the
                // update working set on its second write.
                stats_.update_bytes += block_size_;
                if (!(flags & kUpdated)) {
                    flags |= kUpdated;
                    stats_.update_wss_bytes += block_size_;
                }
            } else {
                flags |= kWritten;
                stats_.write_wss_bytes += block_size_;
            }
        }
    });
}

} // namespace cbs
