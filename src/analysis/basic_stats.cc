#include "analysis/basic_stats.h"

#include <algorithm>

namespace cbs {

BasicStatsAnalyzer::BasicStatsAnalyzer(std::uint64_t block_size)
    : block_size_(block_size)
{
}

void
BasicStatsAnalyzer::consume(const IoRequest &req)
{
    if (!any_) {
        stats_.first_timestamp = req.timestamp;
        any_ = true;
    }
    stats_.last_timestamp = std::max(stats_.last_timestamp,
                                     req.timestamp);

    std::uint8_t &seen = seen_volume_[req.volume];
    if (!seen) {
        seen = 1;
        ++stats_.volumes;
    }

    if (req.isRead()) {
        ++stats_.reads;
        stats_.read_bytes += req.length;
    } else {
        ++stats_.writes;
        stats_.write_bytes += req.length;
    }

    forEachBlock(req, block_size_, [&](BlockNo block) {
        auto [flags, inserted] =
            blocks_.tryEmplace(blockKey(req.volume, block));
        if (inserted)
            stats_.total_wss_bytes += block_size_;
        if (req.isRead()) {
            if (!(flags & kRead)) {
                flags |= kRead;
                stats_.read_wss_bytes += block_size_;
            }
        } else {
            if (flags & kWritten) {
                // An overwrite: update traffic, and the block joins the
                // update working set on its second write.
                stats_.update_bytes += block_size_;
                if (!(flags & kUpdated)) {
                    flags |= kUpdated;
                    stats_.update_wss_bytes += block_size_;
                }
            } else {
                flags |= kWritten;
                stats_.write_wss_bytes += block_size_;
            }
        }
    });
}

} // namespace cbs
