/**
 * @file
 * CacheSimResults: the read-only reporting surface of a finished
 * cache simulation.
 *
 * Two engines produce these results — the paper's literal two-pass
 * per-fraction LRU simulation (CacheMissAnalyzer) and the single-pass
 * Mattson/SHARDS miss-ratio-curve analyzer (CacheMrcAnalyzer). The
 * report layer (WorkloadSummary::print/writeJson) renders either
 * through this interface, so adding an engine never touches the
 * emitters.
 */

#ifndef CBS_ANALYSIS_CACHE_RESULTS_H
#define CBS_ANALYSIS_CACHE_RESULTS_H

#include <cstdint>
#include <string>

#include "stats/exact_quantiles.h"

namespace cbs {

class CacheSimResults
{
  public:
    virtual ~CacheSimResults() = default;

    /** Replacement policy simulated ("lru", "arc", ...). */
    virtual const std::string &policyName() const = 0;

    /** Engine label: "two-pass" | "mrc" | "mrc-shards". */
    virtual const char *modeName() const = 0;

    virtual std::uint64_t blockSize() const = 0;

    /** The requested fraction-of-WSS cache sizes (paper: 1%, 10%). */
    virtual std::size_t fractionCount() const = 0;
    virtual double fractionAt(std::size_t i) const = 0;

    /** Per-volume read/write miss ratios at size fraction @p i. */
    virtual const ExactQuantiles &readMissRatios(std::size_t i) const = 0;
    virtual const ExactQuantiles &writeMissRatios(std::size_t i) const = 0;

    /**
     * The full log-spaced miss-ratio curve (an MRC engine computes it
     * for free; the two-pass engine reports zero points). Points are
     * fractions of each volume's WSS, ascending.
     */
    virtual std::size_t curvePointCount() const { return 0; }
    virtual double curveFractionAt(std::size_t) const { return 0.0; }
    virtual const ExactQuantiles *curveReadMissRatios(std::size_t) const
    {
        return nullptr;
    }
    virtual const ExactQuantiles *curveWriteMissRatios(std::size_t) const
    {
        return nullptr;
    }
};

} // namespace cbs

#endif // CBS_ANALYSIS_CACHE_RESULTS_H
