/**
 * @file
 * Analyzer and Pipeline: the streaming-analysis interfaces.
 *
 * An Analyzer consumes requests in timestamp order and computes one of
 * the paper's metric families; a Pipeline fans a single trace pass to
 * many analyzers. All analyzers are single-pass except the cache
 * simulation (CacheMissAnalyzer), whose method is inherently two-pass.
 */

#ifndef CBS_ANALYSIS_ANALYZER_H
#define CBS_ANALYSIS_ANALYZER_H

#include <string>
#include <vector>

#include "trace/trace_source.h"

namespace cbs {

class Analyzer
{
  public:
    virtual ~Analyzer() = default;

    /** Consume one request (timestamps must be non-decreasing). */
    virtual void consume(const IoRequest &req) = 0;

    /** Finish the pass; called once after the last request. */
    virtual void finalize() {}

    /** Short identifier for reports. */
    virtual std::string name() const = 0;
};

/** Run one pass of @p source through all @p analyzers, then finalize. */
void runPipeline(TraceSource &source,
                 const std::vector<Analyzer *> &analyzers);

} // namespace cbs

#endif // CBS_ANALYSIS_ANALYZER_H
