/**
 * @file
 * Analyzer and Pipeline: the streaming-analysis interfaces.
 *
 * An Analyzer consumes requests in timestamp order and computes one of
 * the paper's metric families; a Pipeline fans a single trace pass to
 * many analyzers. All analyzers are single-pass except the two-pass
 * cache simulation (CacheMissAnalyzer); its single-pass replacement
 * for LRU is CacheMrcAnalyzer (analysis/cache_mrc.h).
 *
 * A ShardableAnalyzer additionally supports the sharded parallel
 * pipeline (analysis/parallel_pipeline.h): its state can be replicated
 * per shard with clone() and recombined with mergeFrom(), and the same
 * pre-finalize state round-trips through the versioned snapshot format
 * (src/snapshot/) via serialize()/deserialize(). Every analyzer in the
 * paper's bundle qualifies, because its metrics are keyed per volume
 * or per block — as does the single-pass MRC cache simulation; only
 * analyzers whose results depend on the globally time-ordered
 * cross-volume stream (the volume classifier) stay plain Analyzers
 * and run on the pipeline's in-order lane instead.
 */

#ifndef CBS_ANALYSIS_ANALYZER_H
#define CBS_ANALYSIS_ANALYZER_H

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "snapshot/wire.h"
#include "trace/trace_source.h"

namespace cbs {

class Analyzer
{
  public:
    virtual ~Analyzer() = default;

    /** Consume one request (timestamps must be non-decreasing). */
    virtual void consume(const IoRequest &req) = 0;

    /**
     * Consume a timestamp-ordered batch. Equivalent to calling
     * consume() on each request in order — the default does exactly
     * that — but dispatched as one virtual call per batch, so the
     * pipelines pay one indirect call per ~1k requests instead of per
     * request. Hot analyzers override this with a tight loop over
     * their non-virtual consume (see docs/adding-an-analyzer.md).
     */
    virtual void
    consumeBatch(std::span<const IoRequest> batch)
    {
        for (const IoRequest &req : batch)
            consume(req);
    }

    /**
     * Consume one columnar batch (see trace/request_batch.h). The
     * default materializes the batch's rows once (cached and shared
     * across every analyzer consuming the same batch) and feeds them
     * to consumeBatch in arrival order — so analyzers without a
     * columnar kernel keep both their exact semantics and their
     * existing consumeBatch fast path.
     *
     * Kernel overrides may instead walk the batch volume-major via
     * volumeRuns(), which preserves per-volume/per-block timestamp
     * order but not global cross-volume order; only analyzers whose
     * state is keyed per volume or per block (the ShardableAnalyzer
     * contract) may do so. Determinism rule: an override must produce
     * results identical to the default for any arrival-ordered batch
     * (the ColumnarParity suite enforces this per analyzer). See
     * docs/adding-an-analyzer.md, "Columnar kernels".
     */
    virtual void
    consumeColumns(const RequestBatch &batch)
    {
        consumeBatch(batch.rowsMaterialized());
    }

    /** Finish the pass; called once after the last request. */
    virtual void finalize() {}

    /** Short identifier for reports. */
    virtual std::string name() const = 0;
};

/**
 * An analyzer whose single-pass state can be computed shard-by-shard
 * and recombined.
 *
 * Contract:
 *  - clone() returns a fresh, empty replica with the same
 *    configuration (block size, windows, thresholds);
 *  - replicas consume disjoint volume subsets of the trace, each
 *    subset in timestamp order;
 *  - mergeFrom(shard) folds a replica's *pre-finalize* state into
 *    this analyzer; it is called before finalize(), once per replica,
 *    and the replica itself is never finalized;
 *  - after merging all replicas, finalize() produces results
 *    identical to a serial pass over the whole trace (provided the
 *    shards partitioned requests by volume);
 *  - serialize(sink) writes the same pre-finalize state to a snapshot
 *    section and deserialize(source) restores it into a fresh clone,
 *    such that save/load/mergeFrom is indistinguishable from
 *    mergeFrom on the live replica. Serialization must be
 *    deterministic: hash-map state is emitted in sorted key order so
 *    snapshot bytes are stable across runs and thread counts.
 */
class ShardableAnalyzer : public Analyzer
{
  public:
    /** Fresh empty replica with identical configuration. */
    virtual std::unique_ptr<ShardableAnalyzer> clone() const = 0;

    /**
     * Fold @p shard's accumulated (un-finalized) state into this
     * analyzer. @p shard must be the same concrete type.
     */
    virtual void mergeFrom(const ShardableAnalyzer &shard) = 0;

    /**
     * Write this analyzer's full pre-finalize state (including its
     * configuration, for mismatch diagnostics) to @p sink in a
     * deterministic byte order. The default panics: analyzers outside
     * the snapshot bundle (test doubles, the two-pass cache passes)
     * don't participate until they implement the pair.
     */
    virtual void
    serialize(snap::Sink &sink) const
    {
        (void)sink;
        CBS_PANIC("analyzer " << name()
                              << " does not implement snapshot "
                                 "serialization");
    }

    /**
     * Restore state previously written by serialize() on an analyzer
     * with the same configuration. Throws SnapshotError (via
     * Source::fail) on malformed payloads and FatalError on
     * configuration mismatch; must never crash or partially apply a
     * corrupt payload in a way that is silently reported as success.
     */
    virtual void
    deserialize(snap::Source &source)
    {
        (void)source;
        CBS_PANIC("analyzer " << name()
                              << " does not implement snapshot "
                                 "deserialization");
    }
};

/** Checked downcast used by mergeFrom implementations. */
template <typename T>
const T &
shardCast(const ShardableAnalyzer &shard)
{
    const T *cast = dynamic_cast<const T *>(&shard);
    CBS_EXPECT(cast, "mergeFrom: shard is a " << shard.name()
                                              << ", not the expected type");
    return *cast;
}

/** Serial-pipeline knobs (see also ParallelOptions). */
struct PipelineOptions
{
    /** Requests per ingest batch. Results are batch-size-invariant;
     *  this is purely a throughput/footprint knob (--batch-records). */
    std::size_t batch_records = 4096;

    /**
     * Columnar execution (the default): pull RequestBatches through
     * TraceSource::nextColumns and dispatch consumeColumns, engaging
     * the hand-tiled kernels of the hot analyzers. Off = the legacy
     * row path (nextBatch + consumeBatch). Results are byte-identical
     * either way; the toggle exists for attribution and parity tests.
     */
    bool columnar = true;

    /** Optional observability sink (same keys as the legacy entry
     *  point below). */
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * Run finalize() after the last batch (the default). Snapshot
     * emission (--emit-partial) turns this off: partials carry
     * pre-finalize state, and some analyzers' finalize() consumes
     * working state, so a to-be-serialized bundle must not finalize.
     */
    bool finalize = true;

    /**
     * Checkpoint hook: when set with a positive checkpoint_every, the
     * serial pipeline invokes it between batches each time another
     * checkpoint_every requests have been consumed, passing the total
     * consumed so far. The bundle is quiescent (no batch in flight,
     * not finalized) during the call, so the hook may serialize it.
     */
    std::uint64_t checkpoint_every = 0;
    std::function<void(std::uint64_t)> checkpoint;
};

/**
 * Run one pass of @p source through all @p analyzers, then finalize.
 *
 * When metrics are attached, each analyzer's per-batch consume time
 * is recorded into an `analyzer.<name>.batch_ns` histogram and its
 * finalize time into an `analyzer.<name>.finalize_ns` counter (see
 * docs/observability.md); a null registry costs one check per batch.
 */
void runPipeline(TraceSource &source,
                 const std::vector<Analyzer *> &analyzers,
                 const PipelineOptions &options);

/** Legacy entry point: default PipelineOptions with @p metrics. */
void runPipeline(TraceSource &source,
                 const std::vector<Analyzer *> &analyzers,
                 obs::MetricsRegistry *metrics = nullptr);

} // namespace cbs

#endif // CBS_ANALYSIS_ANALYZER_H
