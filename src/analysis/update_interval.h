/**
 * @file
 * UpdateIntervalAnalyzer: update intervals of written blocks
 * (Finding 14; Figs. 16-17, Table VI).
 *
 * The update interval of a block is the elapsed time between two
 * consecutive writes to it (reads in between are allowed — this is what
 * distinguishes it from the WAW time). The analyzer keeps a global
 * histogram (Table VI), a per-volume histogram for the percentile
 * boxplots of Fig. 16, and the four duration-group proportions of
 * Fig. 17.
 */

#ifndef CBS_ANALYSIS_UPDATE_INTERVAL_H
#define CBS_ANALYSIS_UPDATE_INTERVAL_H

#include <array>
#include <cstdint>
#include <memory>

#include "analysis/analyzer.h"
#include "analysis/block_state_map.h"
#include "analysis/per_volume.h"
#include "stats/boxplot.h"
#include "stats/exact_quantiles.h"
#include "stats/log_histogram.h"

namespace cbs {

class UpdateIntervalAnalyzer : public ShardableAnalyzer
{
  public:
    /** Fig. 17's duration groups: <5 min, 5-30 min, 30-240 min, >240 min. */
    static constexpr std::array<TimeUs, 3> kGroupBounds = {
        5 * units::minute, 30 * units::minute, 240 * units::minute};

    /** The percentile groups of Fig. 16. */
    static constexpr std::array<double, 5> kPercentiles = {
        0.25, 0.50, 0.75, 0.90, 0.95};

    explicit UpdateIntervalAnalyzer(
        std::uint64_t block_size = kDefaultBlockSize);

    void consume(const IoRequest &req) override;
    void consumeColumns(const RequestBatch &batch) override;
    void finalize() override;
    std::string name() const override { return "update_interval"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** Global histogram of update intervals (µs) — Table VI. */
    const LogHistogram &global() const { return global_; }

    /** Per-volume percentile values (µs) across volumes; index i
     *  corresponds to kPercentiles[i] (Fig. 16). */
    const std::array<ExactQuantiles, 5> &
    percentileGroups() const
    {
        return percentile_groups_;
    }

    /** Per-volume proportions of intervals falling in duration group
     *  g (0: <5 min ... 3: >240 min), across volumes (Fig. 17). */
    const std::array<ExactQuantiles, 4> &
    durationGroups() const
    {
        return duration_groups_;
    }

  private:
    std::uint64_t block_size_;
    BlockStateMap<std::uint64_t> last_write_; //!< ts+1; 0 = unwritten
    PerVolume<std::unique_ptr<LogHistogram>> volume_hists_;
    LogHistogram global_;
    std::array<ExactQuantiles, 5> percentile_groups_;
    std::array<ExactQuantiles, 4> duration_groups_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_UPDATE_INTERVAL_H
