#include "analysis/analyzer.h"

#include "obs/metrics.h"

namespace cbs {
namespace {

/** Per-analyzer timing sinks, registered once up front; empty when
 *  observability is off, so the hot loop pays only this emptiness
 *  check per batch. */
std::vector<obs::Histogram *>
batchTimings(const std::vector<Analyzer *> &analyzers,
             obs::MetricsRegistry *metrics)
{
    std::vector<obs::Histogram *> timings;
    if (metrics) {
        timings.reserve(analyzers.size());
        for (Analyzer *analyzer : analyzers)
            timings.push_back(&metrics->histogram(
                "analyzer." + analyzer->name() + ".batch_ns"));
    }
    return timings;
}

void
finalizeAll(const std::vector<Analyzer *> &analyzers,
            obs::MetricsRegistry *metrics)
{
    for (Analyzer *analyzer : analyzers) {
        obs::ScopedTimer timer(
            nullptr, metrics ? &metrics->counter("analyzer." +
                                                 analyzer->name() +
                                                 ".finalize_ns")
                             : nullptr);
        analyzer->finalize();
    }
}

} // namespace

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers,
            const PipelineOptions &options)
{
    // Pull batches rather than single requests: one virtual call per
    // batch instead of per record, and sources with real batch
    // implementations parse in bulk.
    std::size_t batch_records =
        options.batch_records ? options.batch_records : 4096;
    obs::MetricsRegistry *metrics = options.metrics;
    std::vector<obs::Histogram *> timings =
        batchTimings(analyzers, metrics);

    // Checkpoint cadence: fire the hook between batches each time
    // another checkpoint_every requests have gone through.
    std::uint64_t consumed = 0;
    std::uint64_t next_checkpoint =
        (options.checkpoint && options.checkpoint_every)
            ? options.checkpoint_every
            : ~std::uint64_t{0};
    auto noteBatch = [&](std::size_t n) {
        consumed += n;
        if (consumed >= next_checkpoint) {
            options.checkpoint(consumed);
            next_checkpoint =
                consumed + options.checkpoint_every;
        }
    };

    if (options.columnar) {
        RequestBatch batch;
        batch.reserve(batch_records);
        std::size_t n;
        while ((n = source.nextColumns(batch, batch_records))) {
            if (timings.empty()) {
                for (Analyzer *analyzer : analyzers)
                    analyzer->consumeColumns(batch);
            } else {
                // Timed variant: each histogram sample is one
                // analyzer's cost over one batch.
                for (std::size_t i = 0; i < analyzers.size(); ++i) {
                    obs::ScopedTimer timer(timings[i]);
                    analyzers[i]->consumeColumns(batch);
                }
            }
            noteBatch(n);
        }
    } else {
        std::vector<IoRequest> batch;
        batch.reserve(batch_records);
        std::size_t n;
        while ((n = source.nextBatch(batch, batch_records))) {
            std::span<const IoRequest> span(batch);
            if (timings.empty()) {
                for (Analyzer *analyzer : analyzers)
                    analyzer->consumeBatch(span);
            } else {
                for (std::size_t i = 0; i < analyzers.size(); ++i) {
                    obs::ScopedTimer timer(timings[i]);
                    analyzers[i]->consumeBatch(span);
                }
            }
            noteBatch(n);
        }
    }
    if (options.finalize)
        finalizeAll(analyzers, metrics);
}

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers,
            obs::MetricsRegistry *metrics)
{
    PipelineOptions options;
    options.metrics = metrics;
    runPipeline(source, analyzers, options);
}

} // namespace cbs
