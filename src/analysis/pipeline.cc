#include "analysis/analyzer.h"

#include "obs/metrics.h"

namespace cbs {

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers,
            obs::MetricsRegistry *metrics)
{
    // Pull batches rather than single requests: one virtual call per
    // ~1k records instead of per record, and sources with real
    // nextBatch implementations parse in bulk.
    constexpr std::size_t kBatch = 1024;

    // Per-analyzer timing sinks, registered once up front; empty when
    // observability is off, so the hot loop pays only this emptiness
    // check per batch.
    std::vector<obs::Histogram *> timings;
    if (metrics) {
        timings.reserve(analyzers.size());
        for (Analyzer *analyzer : analyzers)
            timings.push_back(&metrics->histogram(
                "analyzer." + analyzer->name() + ".batch_ns"));
    }

    std::vector<IoRequest> batch;
    batch.reserve(kBatch);
    while (source.nextBatch(batch, kBatch)) {
        std::span<const IoRequest> span(batch);
        if (timings.empty()) {
            for (Analyzer *analyzer : analyzers)
                analyzer->consumeBatch(span);
        } else {
            // Timed variant: each histogram sample is one analyzer's
            // cost over one batch (two clock reads per ~1k requests).
            for (std::size_t i = 0; i < analyzers.size(); ++i) {
                obs::ScopedTimer timer(timings[i]);
                analyzers[i]->consumeBatch(span);
            }
        }
    }
    for (Analyzer *analyzer : analyzers) {
        obs::ScopedTimer timer(
            nullptr, metrics ? &metrics->counter("analyzer." +
                                                 analyzer->name() +
                                                 ".finalize_ns")
                             : nullptr);
        analyzer->finalize();
    }
}

} // namespace cbs
