#include "analysis/analyzer.h"

namespace cbs {

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers)
{
    IoRequest req;
    while (source.next(req)) {
        for (Analyzer *analyzer : analyzers)
            analyzer->consume(req);
    }
    for (Analyzer *analyzer : analyzers)
        analyzer->finalize();
}

} // namespace cbs
