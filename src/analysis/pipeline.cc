#include "analysis/analyzer.h"

namespace cbs {

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers)
{
    // Pull batches rather than single requests: one virtual call per
    // ~1k records instead of per record, and sources with real
    // nextBatch implementations parse in bulk.
    constexpr std::size_t kBatch = 1024;
    std::vector<IoRequest> batch;
    batch.reserve(kBatch);
    while (source.nextBatch(batch, kBatch)) {
        for (const IoRequest &req : batch) {
            for (Analyzer *analyzer : analyzers)
                analyzer->consume(req);
        }
    }
    for (Analyzer *analyzer : analyzers)
        analyzer->finalize();
}

} // namespace cbs
