#include "analysis/analyzer.h"

#include "obs/metrics.h"

namespace cbs {
namespace {

/** Per-analyzer timing sinks, registered once up front; empty when
 *  observability is off, so the hot loop pays only this emptiness
 *  check per batch. */
std::vector<obs::Histogram *>
batchTimings(const std::vector<Analyzer *> &analyzers,
             obs::MetricsRegistry *metrics)
{
    std::vector<obs::Histogram *> timings;
    if (metrics) {
        timings.reserve(analyzers.size());
        for (Analyzer *analyzer : analyzers)
            timings.push_back(&metrics->histogram(
                "analyzer." + analyzer->name() + ".batch_ns"));
    }
    return timings;
}

void
finalizeAll(const std::vector<Analyzer *> &analyzers,
            obs::MetricsRegistry *metrics)
{
    for (Analyzer *analyzer : analyzers) {
        obs::ScopedTimer timer(
            nullptr, metrics ? &metrics->counter("analyzer." +
                                                 analyzer->name() +
                                                 ".finalize_ns")
                             : nullptr);
        analyzer->finalize();
    }
}

} // namespace

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers,
            const PipelineOptions &options)
{
    // Pull batches rather than single requests: one virtual call per
    // batch instead of per record, and sources with real batch
    // implementations parse in bulk.
    std::size_t batch_records =
        options.batch_records ? options.batch_records : 4096;
    obs::MetricsRegistry *metrics = options.metrics;
    std::vector<obs::Histogram *> timings =
        batchTimings(analyzers, metrics);

    if (options.columnar) {
        RequestBatch batch;
        batch.reserve(batch_records);
        while (source.nextColumns(batch, batch_records)) {
            if (timings.empty()) {
                for (Analyzer *analyzer : analyzers)
                    analyzer->consumeColumns(batch);
            } else {
                // Timed variant: each histogram sample is one
                // analyzer's cost over one batch.
                for (std::size_t i = 0; i < analyzers.size(); ++i) {
                    obs::ScopedTimer timer(timings[i]);
                    analyzers[i]->consumeColumns(batch);
                }
            }
        }
    } else {
        std::vector<IoRequest> batch;
        batch.reserve(batch_records);
        while (source.nextBatch(batch, batch_records)) {
            std::span<const IoRequest> span(batch);
            if (timings.empty()) {
                for (Analyzer *analyzer : analyzers)
                    analyzer->consumeBatch(span);
            } else {
                for (std::size_t i = 0; i < analyzers.size(); ++i) {
                    obs::ScopedTimer timer(timings[i]);
                    analyzers[i]->consumeBatch(span);
                }
            }
        }
    }
    finalizeAll(analyzers, metrics);
}

void
runPipeline(TraceSource &source, const std::vector<Analyzer *> &analyzers,
            obs::MetricsRegistry *metrics)
{
    PipelineOptions options;
    options.metrics = metrics;
    runPipeline(source, analyzers, options);
}

} // namespace cbs
