/**
 * @file
 * CacheMissAnalyzer: per-volume LRU miss ratios at cache sizes set to a
 * fraction of each volume's WSS (Finding 15, Fig. 18).
 *
 * The paper's method is inherently two-pass: the first pass measures
 * each volume's working-set size, the second simulates a unified
 * (reads + writes) LRU cache per volume sized at 1% and 10% of that
 * WSS. runTwoPass() drives both passes, resetting the source between
 * them.
 */

#ifndef CBS_ANALYSIS_CACHE_MISS_H
#define CBS_ANALYSIS_CACHE_MISS_H

#include <memory>
#include <vector>

#include "analysis/per_volume.h"
#include "cache/cache_sim.h"
#include "stats/exact_quantiles.h"
#include "trace/trace_source.h"

namespace cbs {

class CacheMissAnalyzer
{
  public:
    /**
     * @param size_fractions cache sizes as fractions of the volume WSS
     *        (paper: {0.01, 0.10}).
     * @param block_size block granularity.
     * @param policy replacement policy name (paper: "lru").
     */
    explicit CacheMissAnalyzer(
        std::vector<double> size_fractions = {0.01, 0.10},
        std::uint64_t block_size = kDefaultBlockSize,
        std::string policy = "lru");

    /** Run the WSS pass and the simulation pass over @p source. */
    void runTwoPass(TraceSource &source);

    std::size_t fractionCount() const { return fractions_.size(); }
    double fractionAt(std::size_t i) const { return fractions_[i]; }

    /** Per-volume read miss ratios at size fraction @p i. */
    const ExactQuantiles &readMissRatios(std::size_t i) const;
    /** Per-volume write miss ratios at size fraction @p i. */
    const ExactQuantiles &writeMissRatios(std::size_t i) const;

  private:
    std::vector<double> fractions_;
    std::uint64_t block_size_;
    std::string policy_;
    std::vector<ExactQuantiles> read_ratios_;
    std::vector<ExactQuantiles> write_ratios_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_CACHE_MISS_H
