/**
 * @file
 * CacheMissAnalyzer: per-volume LRU miss ratios at cache sizes set to a
 * fraction of each volume's WSS (Finding 15, Fig. 18).
 *
 * The paper's method is inherently two-pass: the first pass measures
 * each volume's working-set size, the second simulates a unified
 * (reads + writes) LRU cache per volume sized at 1% and 10% of that
 * WSS. runTwoPass() drives both passes serially, resetting the source
 * between them.
 *
 * Both passes are keyed purely by volume, so they shard cleanly:
 * runTwoPassParallel() runs each pass through runPipelineParallel's
 * per-shard SPSC machinery (internally both passes are
 * ShardableAnalyzers), including multi-lane ingestion for splittable
 * sources (CBT2, VectorSource). Results are identical to runTwoPass —
 * per-volume miss ratios are computed from integer hit/miss tallies
 * and harvested in volume order either way.
 *
 * For the LRU policy, CacheMrcAnalyzer (analysis/cache_mrc.h) gets
 * the same numbers — bit-identical at matching capacities — in a
 * single pass via Mattson stack distances; this two-pass simulation
 * remains the engine for the non-stack policies (fifo/clock/lfu/arc)
 * and the reference the MRC parity suite checks against.
 */

#ifndef CBS_ANALYSIS_CACHE_MISS_H
#define CBS_ANALYSIS_CACHE_MISS_H

#include <memory>
#include <vector>

#include "analysis/cache_results.h"
#include "analysis/parallel_pipeline.h"
#include "analysis/per_volume.h"
#include "cache/cache_sim.h"
#include "stats/exact_quantiles.h"
#include "trace/trace_source.h"

namespace cbs {

class CacheMissAnalyzer : public CacheSimResults
{
  public:
    /**
     * @param size_fractions cache sizes as fractions of the volume WSS
     *        (paper: {0.01, 0.10}).
     * @param block_size block granularity.
     * @param policy replacement policy name (paper: "lru").
     */
    explicit CacheMissAnalyzer(
        std::vector<double> size_fractions = {0.01, 0.10},
        std::uint64_t block_size = kDefaultBlockSize,
        std::string policy = "lru");

    /** Run the WSS pass and the simulation pass over @p source. */
    void runTwoPass(TraceSource &source);

    /**
     * Same two passes, each through runPipelineParallel with
     * @p options worth of parallelism. @p source must be resettable
     * (runTwoPass requires that already). Metrics from the two passes
     * are kept apart by appending ".pass1" / ".pass2" to
     * options.metrics_prefix; total per-pass wall time lands in
     * `cache_sim.pass1_ns` / `cache_sim.pass2_ns`.
     *
     * The returned status combines both passes (lane names gain a
     * "pass1."/"pass2." prefix). Under options.degraded_ok a lane
     * failure in either pass is contained: volumes lost in pass 1
     * simulate with a WSS of zero traffic seen, i.e. they are skipped,
     * and volumes lost in pass 2 contribute no ratio samples.
     */
    PipelineRunStatus runTwoPassParallel(TraceSource &source,
                                         const ParallelOptions &options = {});

    std::size_t fractionCount() const override
    {
        return fractions_.size();
    }
    double fractionAt(std::size_t i) const override
    {
        return fractions_[i];
    }
    std::uint64_t blockSize() const override { return block_size_; }
    const std::string &policyName() const override { return policy_; }
    const char *modeName() const override { return "two-pass"; }

    /** Per-volume read miss ratios at size fraction @p i. */
    const ExactQuantiles &readMissRatios(std::size_t i) const override;
    /** Per-volume write miss ratios at size fraction @p i. */
    const ExactQuantiles &writeMissRatios(std::size_t i) const override;

  private:
    void harvest(const PerVolume<std::vector<CacheStats>> &stats);

    std::vector<double> fractions_;
    std::uint64_t block_size_;
    std::string policy_;
    std::vector<ExactQuantiles> read_ratios_;
    std::vector<ExactQuantiles> write_ratios_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_CACHE_MISS_H
