/**
 * @file
 * SizeAnalyzer: request-size distributions (Fig. 2) — the global read
 * and write size CDFs across all requests, and the per-volume average
 * request sizes behind Fig. 2(b).
 */

#ifndef CBS_ANALYSIS_SIZE_STATS_H
#define CBS_ANALYSIS_SIZE_STATS_H

#include "analysis/analyzer.h"
#include "analysis/per_volume.h"
#include "stats/ecdf.h"
#include "stats/log_histogram.h"

namespace cbs {

class SizeAnalyzer : public ShardableAnalyzer
{
  public:
    SizeAnalyzer();

    void consume(const IoRequest &req) override;
    void consumeBatch(std::span<const IoRequest> batch) override;
    void finalize() override;
    std::string name() const override { return "size_stats"; }

    std::unique_ptr<ShardableAnalyzer> clone() const override;
    void mergeFrom(const ShardableAnalyzer &shard) override;
    void serialize(snap::Sink &sink) const override;
    void deserialize(snap::Source &source) override;

    /** Global CDF over all read request sizes (bytes). */
    const LogHistogram &readSizes() const { return read_sizes_; }
    /** Global CDF over all write request sizes (bytes). */
    const LogHistogram &writeSizes() const { return write_sizes_; }

    /** CDF of per-volume average read sizes (volumes with >= 1 read). */
    const Ecdf &volumeAvgReadSizes() const { return avg_read_; }
    /** CDF of per-volume average write sizes. */
    const Ecdf &volumeAvgWriteSizes() const { return avg_write_; }

  private:
    struct VolumeSums
    {
        std::uint64_t read_bytes = 0;
        std::uint64_t reads = 0;
        std::uint64_t write_bytes = 0;
        std::uint64_t writes = 0;
    };

    LogHistogram read_sizes_;
    LogHistogram write_sizes_;
    PerVolume<VolumeSums> sums_;
    Ecdf avg_read_;
    Ecdf avg_write_;
};

} // namespace cbs

#endif // CBS_ANALYSIS_SIZE_STATS_H
