#include "analysis/cache_miss.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/flat_map.h"
#include "obs/metrics.h"

namespace cbs {
namespace {

/**
 * Pass 1: per-volume working-set size in blocks. Volume-keyed, so a
 * shard replica's counts for its (disjoint) volumes are exact and the
 * merge is a per-volume sum; the block set itself never leaves the
 * replica.
 */
class WssPass final : public ShardableAnalyzer
{
  public:
    explicit WssPass(std::uint64_t block_size) : block_size_(block_size)
    {
    }

    void
    consume(const IoRequest &req) override
    {
        forEachBlock(req, block_size_, [&](BlockNo block) {
            if (seen_.insert(blockKey(req.volume, block)))
                ++wss_[req.volume];
        });
    }

    void
    consumeBatch(std::span<const IoRequest> batch) override
    {
        for (const IoRequest &req : batch)
            WssPass::consume(req);
    }

    std::string name() const override { return "cache_wss"; }

    std::unique_ptr<ShardableAnalyzer>
    clone() const override
    {
        return std::make_unique<WssPass>(block_size_);
    }

    void
    mergeFrom(const ShardableAnalyzer &shard) override
    {
        const auto &other = shardCast<WssPass>(shard);
        wss_.mergeFrom(other.wss_, [](std::uint64_t &own,
                                      const std::uint64_t &theirs) {
            own += theirs;
        });
    }

    const PerVolume<std::uint64_t> &wss() const { return wss_; }

  private:
    std::uint64_t block_size_;
    FlatSet seen_;
    PerVolume<std::uint64_t> wss_;
};

/**
 * Pass 2: one CacheSim per touched volume per size fraction, built
 * lazily on the volume's first request so shard replicas only pay for
 * the volumes they own. All replicas read the same merged WSS table
 * (const, shared). The merge collects each replica's final integer
 * hit/miss tallies into a volume-indexed table; finalize() collects
 * this instance's own sims instead, so the serial path (where the
 * caller's analyzer consumed everything itself) ends in the same
 * state.
 */
class SimPass final : public ShardableAnalyzer
{
  public:
    SimPass(const PerVolume<std::uint64_t> &wss,
            const std::vector<double> &fractions,
            std::uint64_t block_size, const std::string &policy)
        : wss_(wss), fractions_(fractions), block_size_(block_size),
          policy_(policy)
    {
    }

    void
    consume(const IoRequest &req) override
    {
        VolumeSims &vs = sims_[req.volume];
        if (!vs.init)
            initVolume(vs, req.volume);
        for (auto &sim : vs.sims)
            sim->access(req);
    }

    void
    consumeBatch(std::span<const IoRequest> batch) override
    {
        for (const IoRequest &req : batch)
            SimPass::consume(req);
    }

    std::string name() const override { return "cache_sim"; }

    std::unique_ptr<ShardableAnalyzer>
    clone() const override
    {
        return std::make_unique<SimPass>(wss_, fractions_, block_size_,
                                         policy_);
    }

    void
    mergeFrom(const ShardableAnalyzer &shard) override
    {
        collect(shardCast<SimPass>(shard).sims_);
    }

    void finalize() override { collect(sims_); }

    /** Final per-volume tallies, one CacheStats per fraction. */
    const PerVolume<std::vector<CacheStats>> &stats() const
    {
        return stats_;
    }

  private:
    struct VolumeSims
    {
        std::vector<std::unique_ptr<CacheSim>> sims;
        bool init = false;
    };

    void
    initVolume(VolumeSims &vs, VolumeId volume)
    {
        vs.init = true;
        // A volume can be missing from the WSS table only when pass 1
        // lost its shard in a degraded run; skip simulating it.
        std::uint64_t blocks =
            volume < wss_.size() ? wss_.at(volume) : 0;
        if (blocks == 0)
            return;
        vs.sims.reserve(fractions_.size());
        for (double fraction : fractions_) {
            std::size_t capacity = static_cast<std::size_t>(std::max(
                1.0, fraction * static_cast<double>(blocks)));
            vs.sims.push_back(std::make_unique<CacheSim>(
                makeCachePolicy(policy_, capacity), block_size_));
        }
    }

    void
    collect(const PerVolume<VolumeSims> &sims)
    {
        sims.forEach([&](VolumeId volume, const VolumeSims &vs) {
            if (vs.sims.empty())
                return;
            std::vector<CacheStats> &slot = stats_[volume];
            CBS_CHECK(slot.empty()); // volumes are shard-disjoint
            slot.reserve(vs.sims.size());
            for (const auto &sim : vs.sims)
                slot.push_back(sim->stats());
        });
    }

    const PerVolume<std::uint64_t> &wss_;
    const std::vector<double> &fractions_;
    std::uint64_t block_size_;
    const std::string &policy_;
    PerVolume<VolumeSims> sims_;
    PerVolume<std::vector<CacheStats>> stats_;
};

} // namespace

CacheMissAnalyzer::CacheMissAnalyzer(std::vector<double> size_fractions,
                                     std::uint64_t block_size,
                                     std::string policy)
    : fractions_(std::move(size_fractions)),
      block_size_(block_size),
      policy_(std::move(policy))
{
    CBS_EXPECT(!fractions_.empty(), "need at least one size fraction");
    for (double f : fractions_)
        CBS_EXPECT(f > 0 && f <= 1, "size fraction out of (0,1]: " << f);
    CBS_EXPECT(block_size > 0, "block size must be positive");
    read_ratios_.resize(fractions_.size());
    write_ratios_.resize(fractions_.size());
}

void
CacheMissAnalyzer::runTwoPass(TraceSource &source)
{
    WssPass wss(block_size_);
    runPipeline(source, {&wss});

    source.reset();
    SimPass sim(wss.wss(), fractions_, block_size_, policy_);
    runPipeline(source, {&sim});
    harvest(sim.stats());
}

PipelineRunStatus
CacheMissAnalyzer::runTwoPassParallel(TraceSource &source,
                                      const ParallelOptions &options)
{
    PipelineRunStatus status;
    status.degraded_enabled = options.degraded_ok;
    auto fold = [&status](PipelineRunStatus pass,
                          const char *pass_name) {
        status.degraded |= pass.degraded;
        for (LaneStatus &lane : pass.lanes) {
            lane.lane = std::string(pass_name) + "." + lane.lane;
            status.lanes.push_back(std::move(lane));
        }
    };

    WssPass wss(block_size_);
    {
        ParallelOptions pass = options;
        pass.metrics_prefix += ".pass1";
        obs::ScopedTimer timer(
            nullptr,
            options.metrics
                ? &options.metrics->counter("cache_sim.pass1_ns")
                : nullptr);
        fold(runPipelineParallel(source, {&wss}, pass), "pass1");
    }

    source.reset();
    SimPass sim(wss.wss(), fractions_, block_size_, policy_);
    {
        ParallelOptions pass = options;
        pass.metrics_prefix += ".pass2";
        obs::ScopedTimer timer(
            nullptr,
            options.metrics
                ? &options.metrics->counter("cache_sim.pass2_ns")
                : nullptr);
        fold(runPipelineParallel(source, {&sim}, pass), "pass2");
    }
    harvest(sim.stats());
    return status;
}

void
CacheMissAnalyzer::harvest(const PerVolume<std::vector<CacheStats>> &stats)
{
    // Volume order, independent of how many shards produced the
    // tallies — with integer hit/miss counts this makes parallel
    // results bit-identical to serial ones.
    for (const std::vector<CacheStats> &slot : stats) {
        if (slot.empty())
            continue;
        CBS_CHECK(slot.size() == fractions_.size());
        for (std::size_t i = 0; i < fractions_.size(); ++i) {
            const CacheStats &tally = slot[i];
            if (tally.reads())
                read_ratios_[i].add(tally.readMissRatio());
            if (tally.writes())
                write_ratios_[i].add(tally.writeMissRatio());
        }
    }
}

const ExactQuantiles &
CacheMissAnalyzer::readMissRatios(std::size_t i) const
{
    CBS_EXPECT(i < read_ratios_.size(), "fraction index out of range");
    return read_ratios_[i];
}

const ExactQuantiles &
CacheMissAnalyzer::writeMissRatios(std::size_t i) const
{
    CBS_EXPECT(i < write_ratios_.size(), "fraction index out of range");
    return write_ratios_[i];
}

} // namespace cbs
