#include "analysis/cache_miss.h"

#include <algorithm>

#include "common/error.h"
#include "common/flat_map.h"

namespace cbs {

CacheMissAnalyzer::CacheMissAnalyzer(std::vector<double> size_fractions,
                                     std::uint64_t block_size,
                                     std::string policy)
    : fractions_(std::move(size_fractions)),
      block_size_(block_size),
      policy_(std::move(policy))
{
    CBS_EXPECT(!fractions_.empty(), "need at least one size fraction");
    for (double f : fractions_)
        CBS_EXPECT(f > 0 && f <= 1, "size fraction out of (0,1]: " << f);
    CBS_EXPECT(block_size > 0, "block size must be positive");
    read_ratios_.resize(fractions_.size());
    write_ratios_.resize(fractions_.size());
}

void
CacheMissAnalyzer::runTwoPass(TraceSource &source)
{
    // Pass 1: per-volume WSS in blocks.
    PerVolume<std::uint64_t> wss;
    {
        FlatSet seen;
        IoRequest req;
        while (source.next(req)) {
            forEachBlock(req, block_size_, [&](BlockNo block) {
                if (seen.insert(blockKey(req.volume, block)))
                    ++wss[req.volume];
            });
        }
    }

    // Pass 2: one cache per touched volume per size fraction.
    struct VolumeSims
    {
        std::vector<std::unique_ptr<CacheSim>> sims;
    };
    PerVolume<VolumeSims> sims;
    wss.forEach([&](VolumeId volume, const std::uint64_t &blocks) {
        if (blocks == 0)
            return;
        VolumeSims &vs = sims[volume];
        for (double fraction : fractions_) {
            std::size_t capacity = static_cast<std::size_t>(std::max(
                1.0, fraction * static_cast<double>(blocks)));
            vs.sims.push_back(std::make_unique<CacheSim>(
                makeCachePolicy(policy_, capacity), block_size_));
        }
    });

    source.reset();
    IoRequest req;
    while (source.next(req)) {
        for (auto &sim : sims[req.volume].sims)
            sim->access(req);
    }

    for (auto &vs : sims) {
        if (vs.sims.empty())
            continue;
        for (std::size_t i = 0; i < fractions_.size(); ++i) {
            const CacheStats &stats = vs.sims[i]->stats();
            if (stats.reads())
                read_ratios_[i].add(stats.readMissRatio());
            if (stats.writes())
                write_ratios_[i].add(stats.writeMissRatio());
        }
    }
}

const ExactQuantiles &
CacheMissAnalyzer::readMissRatios(std::size_t i) const
{
    CBS_EXPECT(i < read_ratios_.size(), "fraction index out of range");
    return read_ratios_[i];
}

const ExactQuantiles &
CacheMissAnalyzer::writeMissRatios(std::size_t i) const
{
    CBS_EXPECT(i < write_ratios_.size(), "fraction index out of range");
    return write_ratios_[i];
}

} // namespace cbs
