#include "analysis/temporal_pairs.h"

#include "common/error.h"

namespace cbs {

const char *
pairKindName(PairKind kind)
{
    switch (kind) {
      case PairKind::RAW:
        return "RAW";
      case PairKind::WAW:
        return "WAW";
      case PairKind::RAR:
        return "RAR";
      case PairKind::WAR:
        return "WAR";
    }
    CBS_PANIC("unreachable pair kind");
}

TemporalPairsAnalyzer::TemporalPairsAnalyzer(std::uint64_t block_size)
    : block_size_(block_size),
      hists_{LogHistogram(6), LogHistogram(6), LogHistogram(6),
             LogHistogram(6)}
{
    CBS_EXPECT(block_size > 0, "block size must be positive");
}

void
TemporalPairsAnalyzer::consume(const IoRequest &req)
{
    std::uint64_t next =
        (req.timestamp + 1) |
        (req.isWrite() ? kOpBit : std::uint64_t{0});
    last_.forEachState(
        req.volume, req.firstBlock(block_size_),
        req.lastBlock(block_size_), [&](std::uint64_t &state) {
            if (state != 0) {
                bool prev_was_write = state & kOpBit;
                TimeUs prev_time = (state & ~kOpBit) - 1;
                CBS_EXPECT(req.timestamp >= prev_time,
                           "trace not timestamp-ordered");
                TimeUs elapsed = req.timestamp - prev_time;
                PairKind kind;
                if (req.isRead())
                    kind =
                        prev_was_write ? PairKind::RAW : PairKind::RAR;
                else
                    kind =
                        prev_was_write ? PairKind::WAW : PairKind::WAR;
                hists_[static_cast<std::size_t>(kind)].add(elapsed);
            }
            state = next;
        });
}

void
TemporalPairsAnalyzer::consumeColumns(const RequestBatch &batch)
{
    // Volume-major columnar kernel. Safe because all state is keyed
    // per (volume, block): runs preserve each volume's arrival order,
    // and blocks of different volumes never alias. Iterating runs
    // also keeps consecutive probes inside one volume's chunks, and
    // the chunked map turns each request's block span into one probe
    // per 16-block chunk instead of one per block.
    const TimeUs *ts = batch.ts();
    const std::uint8_t *is_write = batch.isWrite();
    const std::vector<std::uint32_t> &order = batch.order();
    for (const RequestBatch::VolumeRun &run : batch.volumeRuns()) {
        for (std::uint32_t k = run.begin; k < run.end; ++k) {
            std::uint32_t i = order[k];
            std::uint64_t next =
                (ts[i] + 1) |
                (is_write[i] ? kOpBit : std::uint64_t{0});
            last_.forEachState(
                run.volume, batch.firstBlockAt(i, block_size_),
                batch.lastBlockAt(i, block_size_),
                [&](std::uint64_t &state) {
                    std::uint64_t prev = state;
                    state = next;
                    if (prev != 0) {
                        TimeUs prev_time = (prev & ~kOpBit) - 1;
                        CBS_EXPECT(ts[i] >= prev_time,
                                   "trace not timestamp-ordered");
                        // Branchless class index: RAW=0 WAW=1 RAR=2
                        // WAR=3 is (previous was read) * 2 +
                        // (current is write).
                        std::size_t kind =
                            ((prev & kOpBit) ? 0 : 2) +
                            ((next & kOpBit) ? 1 : 0);
                        hists_[kind].add(ts[i] - prev_time);
                    }
                });
        }
    }
}

std::unique_ptr<ShardableAnalyzer>
TemporalPairsAnalyzer::clone() const
{
    return std::make_unique<TemporalPairsAnalyzer>(block_size_);
}

void
TemporalPairsAnalyzer::mergeFrom(const ShardableAnalyzer &shard)
{
    const auto &other = shardCast<TemporalPairsAnalyzer>(shard);
    CBS_EXPECT(other.block_size_ == block_size_,
               "cannot merge temporal_pairs shards with different "
               "block sizes");
    for (std::size_t i = 0; i < hists_.size(); ++i)
        hists_[i].merge(other.hists_[i]);
    // Keep the later access per block (compare the timestamp bits, not
    // the op bit); disjoint keys just copy over.
    last_.mergeFrom(other.last_,
                    [](std::uint64_t &own, const std::uint64_t &theirs) {
                        if ((theirs & ~kOpBit) > (own & ~kOpBit))
                            own = theirs;
                    });
}

void
TemporalPairsAnalyzer::serialize(snap::Sink &sink) const
{
    sink.vu64(block_size_);
    for (const LogHistogram &hist : hists_)
        hist.serialize(sink);
    // Per-block state is a packed u64 (timestamp+1 | op bit) that the
    // vu64 encoding would blow up to ten bytes; store it fixed-width.
    last_.serialize(sink, [](snap::Sink &s, const std::uint64_t &state) {
        s.u64(state);
    });
}

void
TemporalPairsAnalyzer::deserialize(snap::Source &source)
{
    std::uint64_t block_size = source.vu64();
    CBS_EXPECT(block_size == block_size_,
               "temporal_pairs snapshot block size "
                   << block_size << " != configured " << block_size_);
    for (LogHistogram &hist : hists_)
        hist.deserialize(source);
    last_.deserialize(source,
                      [](snap::Source &s, std::uint64_t &state) {
                          state = s.u64();
                      });
    source.expectEnd();
}

std::uint64_t
TemporalPairsAnalyzer::count(PairKind kind) const
{
    return hists_[static_cast<std::size_t>(kind)].count();
}

const LogHistogram &
TemporalPairsAnalyzer::times(PairKind kind) const
{
    return hists_[static_cast<std::size_t>(kind)];
}

} // namespace cbs
