#include "snapshot/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/crc32.h"
#include "common/error.h"
#include "common/flat_map.h"

namespace cbs {
namespace {

constexpr unsigned char kMagic[8] = {'C', 'B', 'S', 'S',
                                     'N', 'A', 'P', '1'};
constexpr unsigned char kTrailer[8] = {'C', 'B', 'S', 'S',
                                       'E', 'N', 'D', '1'};

/** Header info plus the located (still undecoded) section payloads. */
struct ParsedSnapshot
{
    SnapshotInfo info;
    struct Section
    {
        std::string name;
        std::size_t offset = 0;
        std::size_t size = 0;
    };
    std::vector<Section> sections;
};

ParsedSnapshot
parseSnapshot(const unsigned char *data, std::size_t size,
              const std::string &context)
{
    snap::Source src(data, size, context);

    unsigned char magic[sizeof(kMagic)];
    if (src.remaining() < sizeof(magic))
        src.fail("truncated: shorter than the 8-byte magic");
    src.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        src.fail("bad magic — not a cbs.snapshot.v1 file");

    std::uint32_t version = src.u32();
    if (version == 0 || version > kSnapshotVersion)
        src.fail("format version " + std::to_string(version) +
                 " is not supported by this build (max " +
                 std::to_string(kSnapshotVersion) + ")");

    std::uint32_t hdr_len = src.u32();
    if (hdr_len > src.remaining())
        src.fail("truncated: header claims " + std::to_string(hdr_len) +
                 " bytes, " + std::to_string(src.remaining()) +
                 " left");
    std::vector<unsigned char> hdr(hdr_len);
    src.bytes(hdr.data(), hdr_len);
    std::uint32_t hdr_crc = src.u32();
    if (crc32(hdr.data(), hdr.size()) != hdr_crc)
        src.fail("header CRC mismatch — the file is corrupted");

    ParsedSnapshot out;
    out.info.version = version;
    snap::Source h(hdr.data(), hdr.size(), context + ": header");
    out.info.config_hash = h.u64();
    out.info.options.block_size = h.u64();
    out.info.options.activeness_interval = h.u64();
    out.info.options.duration = h.u64();
    out.info.options.peak_window = h.u64();
    out.info.provenance.source_id = h.str();
    out.info.provenance.record_count = h.vu64();
    out.info.provenance.first_timestamp = h.vu64();
    out.info.provenance.last_timestamp = h.vu64();
    std::uint64_t section_count = h.vu64();
    h.expectEnd();

    for (std::uint64_t i = 0; i < section_count; ++i) {
        std::string name = src.str();
        if (name.empty())
            src.fail("empty section name");
        if (i && name <= out.sections.back().name)
            src.fail("section '" + name +
                     "' out of order after '" +
                     out.sections.back().name +
                     "' — sections must be unique and sorted");
        std::uint64_t len = src.u64();
        if (len > src.remaining())
            src.fail("truncated: section '" + name + "' claims " +
                     std::to_string(len) + " bytes, " +
                     std::to_string(src.remaining()) + " left");
        std::uint32_t crc = src.u32();
        std::size_t offset = src.position();
        src.skip(static_cast<std::size_t>(len));
        if (crc32(data + offset, static_cast<std::size_t>(len)) != crc)
            src.fail("section '" + name +
                     "' payload CRC mismatch — the file is corrupted");
        out.sections.push_back(
            {std::move(name), offset, static_cast<std::size_t>(len)});
        out.info.sections.push_back(out.sections.back().name);
    }

    unsigned char trailer[sizeof(kTrailer)];
    if (src.remaining() < sizeof(trailer))
        src.fail("truncated: missing the end-of-snapshot trailer");
    src.bytes(trailer, sizeof(trailer));
    if (std::memcmp(trailer, kTrailer, sizeof(kTrailer)) != 0)
        src.fail("bad end-of-snapshot trailer");
    if (!src.atEnd())
        src.fail(std::to_string(src.remaining()) +
                 " bytes of trailing garbage after the trailer");
    return out;
}

} // namespace

void
SnapshotProvenance::combine(const SnapshotProvenance &other)
{
    if (source_id.empty())
        source_id = other.source_id;
    else if (!other.source_id.empty() && other.source_id != source_id)
        source_id += "+" + other.source_id;
    if (record_count == 0) {
        first_timestamp = other.first_timestamp;
        last_timestamp = other.last_timestamp;
    } else if (other.record_count != 0) {
        first_timestamp =
            std::min(first_timestamp, other.first_timestamp);
        last_timestamp = std::max(last_timestamp, other.last_timestamp);
    }
    record_count += other.record_count;
}

std::uint64_t
snapshotConfigHash(const WorkloadSummaryOptions &options)
{
    // The duration is excluded on purpose; see the header.
    std::uint64_t h = mix64(kSnapshotVersion);
    h = mix64(h ^ options.block_size);
    h = mix64(h ^ options.activeness_interval);
    h = mix64(h ^ options.peak_window);
    return h;
}

std::vector<unsigned char>
encodeSnapshot(const WorkloadSummary &summary,
               const SnapshotProvenance &provenance)
{
    std::vector<std::pair<std::string, std::vector<unsigned char>>>
        sections;
    for (const ShardableAnalyzer *analyzer :
         summary.shardableAnalyzers()) {
        snap::Sink payload;
        analyzer->serialize(payload);
        sections.emplace_back(analyzer->name(), payload.take());
    }
    std::sort(sections.begin(), sections.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });

    snap::Sink header;
    header.u64(snapshotConfigHash(summary.options()));
    header.u64(summary.options().block_size);
    header.u64(summary.options().activeness_interval);
    header.u64(summary.options().duration);
    header.u64(summary.options().peak_window);
    header.str(provenance.source_id);
    header.vu64(provenance.record_count);
    header.vu64(provenance.first_timestamp);
    header.vu64(provenance.last_timestamp);
    header.vu64(sections.size());

    snap::Sink out;
    out.bytes(kMagic, sizeof(kMagic));
    out.u32(kSnapshotVersion);
    out.u32(static_cast<std::uint32_t>(header.size()));
    out.bytes(header.data().data(), header.size());
    out.u32(crc32(header.data().data(), header.size()));
    for (const auto &[name, payload] : sections) {
        out.str(name);
        out.u64(payload.size());
        out.u32(crc32(payload.data(), payload.size()));
        out.bytes(payload.data(), payload.size());
    }
    out.bytes(kTrailer, sizeof(kTrailer));
    return out.take();
}

SnapshotInfo
peekSnapshot(const unsigned char *data, std::size_t size,
             const std::string &context)
{
    return parseSnapshot(data, size, context).info;
}

SnapshotInfo
decodeSnapshot(const unsigned char *data, std::size_t size,
               const std::string &context, WorkloadSummary &into)
{
    ParsedSnapshot parsed = parseSnapshot(data, size, context);

    std::uint64_t expected = snapshotConfigHash(into.options());
    if (parsed.info.config_hash != expected) {
        const WorkloadSummaryOptions &theirs = parsed.info.options;
        const WorkloadSummaryOptions &mine = into.options();
        throw SnapshotError(
            "snapshot: " + context +
            ": configuration mismatch — snapshot written with "
            "block_size=" +
            std::to_string(theirs.block_size) +
            " activeness_interval=" +
            std::to_string(theirs.activeness_interval) +
            " peak_window=" + std::to_string(theirs.peak_window) +
            ", reader configured with block_size=" +
            std::to_string(mine.block_size) +
            " activeness_interval=" +
            std::to_string(mine.activeness_interval) +
            " peak_window=" + std::to_string(mine.peak_window));
    }

    std::vector<ShardableAnalyzer *> analyzers =
        into.shardableAnalyzers();
    std::vector<bool> claimed(parsed.sections.size(), false);
    for (ShardableAnalyzer *analyzer : analyzers) {
        std::string name = analyzer->name();
        auto it = std::find_if(parsed.sections.begin(),
                               parsed.sections.end(),
                               [&](const ParsedSnapshot::Section &s) {
                                   return s.name == name;
                               });
        if (it == parsed.sections.end())
            throw SnapshotError("snapshot: " + context +
                                ": missing section '" + name + "'");
        claimed[static_cast<std::size_t>(
            it - parsed.sections.begin())] = true;
        snap::Source payload(data + it->offset, it->size,
                             context + ": section '" + name + "'");
        analyzer->deserialize(payload);
    }
    for (std::size_t i = 0; i < parsed.sections.size(); ++i) {
        if (!claimed[i])
            throw SnapshotError("snapshot: " + context +
                                ": unknown section '" +
                                parsed.sections[i].name + "'");
    }
    return parsed.info;
}

void
writeSnapshotFile(const std::string &path,
                  const WorkloadSummary &summary,
                  const SnapshotProvenance &provenance)
{
    std::vector<unsigned char> bytes =
        encodeSnapshot(summary, provenance);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("snapshot: cannot open '" + tmp +
                                "' for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw SnapshotError("snapshot: failed writing '" + tmp +
                                "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("snapshot: cannot move '" + tmp +
                            "' into place as '" + path + "'");
    }
}

std::vector<unsigned char>
readSnapshotBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("snapshot: cannot open '" + path +
                            "' for reading");
    std::vector<unsigned char> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throw SnapshotError("snapshot: I/O error reading '" + path +
                            "'");
    return bytes;
}

std::vector<std::string>
listSnapshotDirectory(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        throw SnapshotError("snapshot: cannot list directory '" + dir +
                            "': " + ec.message());
    std::vector<std::string> out;
    for (const auto &entry : it) {
        if (!entry.is_regular_file())
            continue;
        std::filesystem::path p = entry.path();
        if (p.extension() != ".cbss")
            continue;
        out.push_back(p.string());
    }
    if (out.empty())
        throw SnapshotError("snapshot: no *.cbss partials in '" + dir +
                            "'");
    std::sort(out.begin(), out.end());
    return out;
}

SnapshotInfo
peekSnapshotFile(const std::string &path)
{
    std::vector<unsigned char> bytes = readSnapshotBytes(path);
    return peekSnapshot(bytes.data(), bytes.size(), path);
}

SnapshotInfo
readSnapshotFile(const std::string &path, WorkloadSummary &into)
{
    std::vector<unsigned char> bytes = readSnapshotBytes(path);
    return decodeSnapshot(bytes.data(), bytes.size(), path, into);
}

} // namespace cbs
