/**
 * @file
 * cbs.snapshot.v1: versioned, CRC-guarded binary snapshots of the
 * bundled analyzer state.
 *
 * A snapshot captures the *pre-finalize* state of every shardable
 * analyzer in a WorkloadSummary, plus the trace provenance (source id,
 * consumed record count, time range) and a hash of the analysis
 * configuration. Snapshots from volume-disjoint partial runs — or from
 * a checkpoint and a resumed tail of the same trace — merge back into
 * a summary whose finalized JSON is byte-identical to a single run.
 *
 * On-disk layout (all integers little-endian; vu64 = LEB128):
 *
 *   magic     "CBSSNAP1"                                   8 bytes
 *   version   u32 (= kSnapshotVersion)
 *   hdr_len   u32, length of the header payload below
 *   header    u64 config_hash
 *             u64 block_size, activeness_interval, duration,
 *                 peak_window             (WorkloadSummaryOptions)
 *             str source_id; vu64 record_count
 *             vu64 first_timestamp, last_timestamp
 *             vu64 section_count
 *   hdr_crc   u32, CRC-32 of the header payload
 *   sections  section_count times, sorted by name:
 *             str name; u64 payload_len; u32 payload_crc; payload
 *   trailer   "CBSSEND1"                                   8 bytes
 *
 * Section payloads are each analyzer's serialize() output. Every
 * malformed input — truncation, bad magic, future version, CRC
 * mismatch, out-of-order or unknown sections, trailing garbage —
 * raises SnapshotError with the file context and byte offset; a
 * config-hash mismatch against the reading summary's options is a
 * SnapshotError too, never a silent partial load.
 */

#ifndef CBS_SNAPSHOT_SNAPSHOT_H
#define CBS_SNAPSHOT_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/workload_summary.h"
#include "snapshot/wire.h"

namespace cbs {

/** Format version written by this build; readers reject anything
 *  newer. */
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** Where a snapshot's records came from. Merging combines provenance:
 *  record counts sum, time ranges union, source ids join with '+'. */
struct SnapshotProvenance
{
    std::string source_id;            //!< trace path or label
    std::uint64_t record_count = 0;   //!< records consumed so far
    TimeUs first_timestamp = 0;       //!< earliest consumed timestamp
    TimeUs last_timestamp = 0;        //!< latest consumed timestamp

    /** Fold another partial's provenance into this one. */
    void combine(const SnapshotProvenance &other);
};

/** Header contents of a snapshot, readable without deserializing any
 *  analyzer payloads (see peekSnapshot). */
struct SnapshotInfo
{
    std::uint32_t version = 0;
    std::uint64_t config_hash = 0;
    WorkloadSummaryOptions options;
    SnapshotProvenance provenance;
    std::vector<std::string> sections; //!< analyzer names, sorted
};

/**
 * Hash of the options that must agree for two analyzer states to be
 * mergeable. The trace duration is deliberately excluded: partial runs
 * derive different durations from their slices, and mergeFrom takes
 * the max.
 */
std::uint64_t snapshotConfigHash(const WorkloadSummaryOptions &options);

/** Serialize @p summary (pre-finalize) into snapshot bytes. */
std::vector<unsigned char>
encodeSnapshot(const WorkloadSummary &summary,
               const SnapshotProvenance &provenance);

/**
 * Parse only the header of snapshot bytes. @p context names the source
 * (e.g. the file path) in error messages. Validates magic, version,
 * header CRC, and the section directory framing.
 */
SnapshotInfo peekSnapshot(const unsigned char *data, std::size_t size,
                          const std::string &context);

/**
 * Deserialize snapshot bytes into @p into, replacing its analyzer
 * state. @p into must have been constructed with options whose
 * snapshotConfigHash matches the snapshot's, and must not have been
 * finalized. The snapshot's section set must exactly match the
 * bundle's analyzer names. Returns the header info.
 */
SnapshotInfo decodeSnapshot(const unsigned char *data, std::size_t size,
                            const std::string &context,
                            WorkloadSummary &into);

/** Write @p summary to @p path atomically (temp file + rename). */
void writeSnapshotFile(const std::string &path,
                       const WorkloadSummary &summary,
                       const SnapshotProvenance &provenance);

/** Read a whole snapshot file into memory. Fails on unreadable or
 *  empty files. */
std::vector<unsigned char> readSnapshotBytes(const std::string &path);

/**
 * List the snapshot partials in directory @p dir: every regular file
 * whose name ends in ".cbss", sorted by name (so zero-padded window
 * indices merge in stream order). Checkpoints and other sidecars with
 * different extensions are skipped by construction. Throws
 * SnapshotError when @p dir is not a readable directory or holds no
 * partials — an empty merge is always a mistake worth naming.
 */
std::vector<std::string> listSnapshotDirectory(const std::string &dir);

/** peekSnapshot over a file. */
SnapshotInfo peekSnapshotFile(const std::string &path);

/** decodeSnapshot over a file. */
SnapshotInfo readSnapshotFile(const std::string &path,
                              WorkloadSummary &into);

} // namespace cbs

#endif // CBS_SNAPSHOT_SNAPSHOT_H
