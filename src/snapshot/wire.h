/**
 * @file
 * Wire primitives for the cbs.snapshot.v1 format: a byte-buffer Sink
 * with little-endian integers, LEB128 varints, bit-cast doubles and
 * length-prefixed strings, and a bounds-checked cursor Source that
 * reads them back. Every analyzer and sketch serializes through this
 * pair, so the entire snapshot format has exactly one place that
 * touches raw bytes.
 *
 * Error model: every malformed read — truncation, runaway varint,
 * oversized string — throws SnapshotError (a FatalError, so the CLI
 * maps it to exit 1) carrying the Source's context string and the
 * byte offset where decoding stopped. Corruption must never crash or
 * silently load partial state; the corruption-corpus suite
 * (tests/snapshot/test_corruption.cc) holds this layer to that.
 */

#ifndef CBS_SNAPSHOT_WIRE_H
#define CBS_SNAPSHOT_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace cbs {

/** Thrown for any malformed or mismatched snapshot content. */
class SnapshotError : public FatalError
{
  public:
    explicit SnapshotError(const std::string &msg) : FatalError(msg) {}
};

namespace snap {

/** Append-only byte buffer the serialize() hooks write into. */
class Sink
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(
                static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(
                static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }

    /** LEB128 varint — one byte for values < 128, the common case for
     *  counts, sizes and per-volume counters. */
    void
    vu64(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<unsigned char>(v) | 0x80);
            v >>= 7;
        }
        buf_.push_back(static_cast<unsigned char>(v));
    }

    /** IEEE-754 bit pattern, little-endian: exact round-trip for every
     *  double including NaN payloads and signed zero. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(std::string_view s)
    {
        vu64(s.size());
        bytes(s.data(), s.size());
    }

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    std::size_t size() const { return buf_.size(); }
    const std::vector<unsigned char> &data() const { return buf_; }
    std::vector<unsigned char> take() { return std::move(buf_); }

  private:
    std::vector<unsigned char> buf_;
};

/** Bounds-checked cursor over a byte span; never reads past the end. */
class Source
{
  public:
    /** @p context names what is being decoded ("header", "section
     *  'basic_stats'") and prefixes every diagnostic. The data span
     *  must outlive the Source. */
    Source(const unsigned char *data, std::size_t size,
           std::string context)
        : data_(data), size_(size), context_(std::move(context))
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    std::uint64_t
    vu64()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            need(1);
            unsigned char b = data_[pos_++];
            if (shift == 63 && (b & ~1u))
                fail("varint overflows 64 bits");
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift >= 64)
                fail("varint overflows 64 bits");
        }
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = vu64();
        if (n > remaining())
            fail("string length " + std::to_string(n) +
                 " exceeds the " + std::to_string(remaining()) +
                 " bytes left");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    void
    bytes(void *out, std::size_t n)
    {
        need(n);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    /** Advance past @p n bytes without decoding them (container
     *  framing walks section payloads this way). */
    void
    skip(std::size_t n)
    {
        need(n);
        pos_ += n;
    }

    std::size_t position() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    /** Deserializers call this last: trailing bytes mean the payload
     *  does not match what this build would have written. */
    void
    expectEnd() const
    {
        if (!atEnd())
            fail(std::to_string(remaining()) +
                 " trailing bytes after the last field");
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw SnapshotError("snapshot: " + context_ + ": " + what +
                            " (at byte " + std::to_string(pos_) +
                            " of " + std::to_string(size_) + ")");
    }

  private:
    void
    need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            fail("truncated: need " + std::to_string(n) +
                 " more bytes, " + std::to_string(size_ - pos_) +
                 " left");
    }

    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string context_;
};

} // namespace snap
} // namespace cbs

#endif // CBS_SNAPSHOT_WIRE_H
