#include "serve/serve.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include "common/crc32.h"
#include "common/error.h"
#include "obs/prometheus.h"

namespace cbs {
namespace {

constexpr unsigned char kCkptMagic[8] = {'C', 'B', 'S', 'S',
                                         'R', 'V', '1', 0};
constexpr std::uint32_t kCkptVersion = 1;
/** magic + version + five u64 fields + crc over those fields. */
constexpr std::size_t kCkptHeaderBytes = 8 + 4 + 5 * 8 + 4;

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    putU32(p, static_cast<std::uint32_t>(v));
    putU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
getU64(const unsigned char *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

/** Write @p bytes to @p path via temp file + rename — the same
 *  atomicity contract as writeSnapshotFile. */
void
writeFileAtomic(const std::string &path, const unsigned char *data,
                std::size_t size, const char *what)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError(std::string(what) + ": cannot open '" +
                                tmp + "' for writing");
        out.write(reinterpret_cast<const char *>(data),
                  static_cast<std::streamsize>(size));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw SnapshotError(std::string(what) +
                                ": failed writing '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError(std::string(what) + ": cannot move '" +
                            tmp + "' into place as '" + path + "'");
    }
}

} // namespace

void
writeServeCheckpoint(const std::string &path,
                     const ServeCheckpoint &checkpoint)
{
    std::vector<unsigned char> bytes(kCkptHeaderBytes +
                                     checkpoint.cumulative.size() +
                                     checkpoint.window.size());
    unsigned char *p = bytes.data();
    std::memcpy(p, kCkptMagic, sizeof(kCkptMagic));
    putU32(p + 8, kCkptVersion);
    unsigned char *fields = p + 12;
    putU64(fields, checkpoint.committed_offset);
    putU64(fields + 8, checkpoint.committed_records);
    putU64(fields + 16, checkpoint.window_index);
    putU64(fields + 24, checkpoint.cumulative.size());
    putU64(fields + 32, checkpoint.window.size());
    putU32(fields + 40, crc32(fields, 40));
    std::memcpy(p + kCkptHeaderBytes, checkpoint.cumulative.data(),
                checkpoint.cumulative.size());
    std::memcpy(p + kCkptHeaderBytes + checkpoint.cumulative.size(),
                checkpoint.window.data(), checkpoint.window.size());
    writeFileAtomic(path, bytes.data(), bytes.size(),
                    "serve checkpoint");
}

ServeCheckpoint
readServeCheckpoint(const std::string &path)
{
    std::vector<unsigned char> bytes = readSnapshotBytes(path);
    if (bytes.size() < kCkptHeaderBytes)
        throw SnapshotError("serve checkpoint '" + path + "': only " +
                            std::to_string(bytes.size()) +
                            " bytes, truncated header");
    const unsigned char *p = bytes.data();
    if (std::memcmp(p, kCkptMagic, sizeof(kCkptMagic)) != 0)
        throw SnapshotError("serve checkpoint '" + path +
                            "': bad magic");
    std::uint32_t version = getU32(p + 8);
    if (version != kCkptVersion)
        throw SnapshotError("serve checkpoint '" + path +
                            "': unsupported version " +
                            std::to_string(version));
    const unsigned char *fields = p + 12;
    if (crc32(fields, 40) != getU32(fields + 40))
        throw SnapshotError("serve checkpoint '" + path +
                            "': header CRC mismatch");
    ServeCheckpoint ck;
    ck.committed_offset = getU64(fields);
    ck.committed_records = getU64(fields + 8);
    ck.window_index = getU64(fields + 16);
    std::uint64_t len_cum = getU64(fields + 24);
    std::uint64_t len_win = getU64(fields + 32);
    if (bytes.size() != kCkptHeaderBytes + len_cum + len_win)
        throw SnapshotError(
            "serve checkpoint '" + path + "': size " +
            std::to_string(bytes.size()) + " does not match declared " +
            std::to_string(kCkptHeaderBytes + len_cum + len_win) +
            " bytes");
    ck.cumulative.assign(p + kCkptHeaderBytes,
                         p + kCkptHeaderBytes + len_cum);
    ck.window.assign(p + kCkptHeaderBytes + len_cum,
                     p + kCkptHeaderBytes + len_cum + len_win);
    // The embedded snapshots are themselves CRC-guarded; validate their
    // framing now so resume fails at startup, not mid-restore.
    peekSnapshot(ck.cumulative.data(), ck.cumulative.size(),
                 path + " (cumulative)");
    peekSnapshot(ck.window.data(), ck.window.size(), path + " (window)");
    return ck;
}

ServeResult
runServe(TraceSource &source, TailingSource &tail,
         const ServeOptions &options)
{
    CBS_EXPECT(!options.out_dir.empty(),
               "serve needs an output directory");
    CBS_EXPECT(options.window_span > 0,
               "serve window span must be positive");
    CBS_EXPECT(options.batch_records > 0,
               "serve batch size must be positive");

    auto sleep = options.sleep;
    if (!sleep)
        sleep = [](std::uint64_t us) {
            std::this_thread::sleep_for(std::chrono::microseconds(us));
        };

    obs::MetricsRegistry *metrics = options.metrics;
    obs::Counter *records_ctr = nullptr, *windows_ctr = nullptr,
                 *checkpoints_ctr = nullptr;
    obs::Gauge *window_gauge = nullptr, *offset_gauge = nullptr;
    obs::Histogram *window_records_hist = nullptr;
    if (metrics) {
        records_ctr = &metrics->counter("serve.records");
        windows_ctr = &metrics->counter("serve.windows");
        checkpoints_ctr = &metrics->counter("serve.checkpoints");
        window_gauge = &metrics->gauge("serve.window.index");
        offset_gauge = &metrics->gauge("serve.committed_offset");
        window_records_hist = &metrics->histogram("serve.window.records");
    }

    ServeResult result;
    WorkloadSummary cumulative(options.summary);
    auto window_bundle =
        std::make_unique<WorkloadSummary>(options.summary);
    SnapshotProvenance prov_cum{options.source_id, 0, 0, 0};
    SnapshotProvenance prov_win{options.source_id, 0, 0, 0};
    WindowSketches sketches;
    std::uint64_t window_index = 0;

    if (options.resume) {
        const ServeCheckpoint &ck = *options.resume;
        prov_cum = decodeSnapshot(ck.cumulative.data(),
                                  ck.cumulative.size(),
                                  "resume (cumulative)", cumulative)
                       .provenance;
        prov_win = decodeSnapshot(ck.window.data(), ck.window.size(),
                                  "resume (window)", *window_bundle)
                       .provenance;
        window_index = ck.window_index;
        // The sketches are observability-only (not checkpointed): they
        // restart empty for the remainder of the open window.
    }

    std::string ckpt_path = options.out_dir + "/current.ckpt";

    auto writeProm = [&] {
        if (!metrics)
            return;
        std::ostringstream oss;
        obs::writePrometheusText(*metrics, oss);
        std::string text = std::move(oss).str();
        writeFileAtomic(
            options.out_dir + "/metrics.prom",
            reinterpret_cast<const unsigned char *>(text.data()),
            text.size(), "serve metrics");
    };

    auto checkpoint = [&] {
        ServeCheckpoint ck;
        ck.committed_offset = tail.committedOffset();
        ck.committed_records = tail.committedRecords();
        ck.window_index = window_index;
        ck.cumulative = encodeSnapshot(cumulative, prov_cum);
        ck.window = encodeSnapshot(*window_bundle, prov_win);
        writeServeCheckpoint(ckpt_path, ck);
        ++result.checkpoints;
        if (checkpoints_ctr)
            checkpoints_ctr->increment();
        if (offset_gauge)
            offset_gauge->set(
                static_cast<std::int64_t>(ck.committed_offset));
    };

    auto closeWindow = [&](std::uint64_t next_index) {
        char name[32];
        std::snprintf(name, sizeof name, "window-%06llu",
                      static_cast<unsigned long long>(window_index));
        std::string base = options.out_dir + "/" + name;
        // Partial first (pre-finalize state), then finalize in place
        // for the human-facing JSON — finalize() may consume working
        // state, so the order is load-bearing.
        writeSnapshotFile(base + ".cbss", *window_bundle, prov_win);
        for (ShardableAnalyzer *a : window_bundle->shardableAnalyzers())
            a->finalize();
        {
            std::ofstream js(base + ".json", std::ios::trunc);
            CBS_EXPECT(js, "serve: cannot open " << base
                                                 << ".json for writing");
            window_bundle->writeJson(js);
        }
        ++result.windows;
        if (windows_ctr)
            windows_ctr->increment();
        if (window_records_hist)
            window_records_hist->record(prov_win.record_count);
        if (metrics) {
            metrics->gauge("serve.window.len_p50_bytes")
                .set(static_cast<std::int64_t>(sketches.len_p50.value()));
            metrics->gauge("serve.window.len_p99_bytes")
                .set(static_cast<std::int64_t>(sketches.len_p99.value()));
            auto top = sketches.hot_volumes.topK(1);
            metrics->gauge("serve.window.hot_volume")
                .set(top.empty()
                         ? -1
                         : static_cast<std::int64_t>(top.front().key));
            metrics->gauge("serve.window.hot_volume_bytes")
                .set(top.empty()
                         ? 0
                         : static_cast<std::int64_t>(top.front().count));
            metrics->gauge("serve.window.sampled_lengths")
                .set(static_cast<std::int64_t>(
                    sketches.lengths.seen()));
        }
        window_bundle =
            std::make_unique<WorkloadSummary>(options.summary);
        prov_win = SnapshotProvenance{options.source_id, 0, 0, 0};
        sketches.reset();
        window_index = next_index;
        if (window_gauge)
            window_gauge->set(static_cast<std::int64_t>(window_index));
        writeProm();
    };

    auto feed = [&](const std::vector<IoRequest> &batch) {
        std::size_t i = 0;
        const std::size_t n = batch.size();
        while (i < n) {
            TimeUs window_end = static_cast<TimeUs>(window_index + 1) *
                                options.window_span;
            std::size_t j = i;
            while (j < n && batch[j].timestamp < window_end)
                ++j;
            if (j > i) {
                std::span<const IoRequest> slice(batch.data() + i,
                                                 j - i);
                for (ShardableAnalyzer *a :
                     cumulative.shardableAnalyzers())
                    a->consumeBatch(slice);
                for (ShardableAnalyzer *a :
                     window_bundle->shardableAnalyzers())
                    a->consumeBatch(slice);
                for (const IoRequest &req : slice)
                    sketches.add(req);
                std::uint64_t count = j - i;
                if (prov_cum.record_count == 0)
                    prov_cum.first_timestamp = slice.front().timestamp;
                prov_cum.record_count += count;
                prov_cum.last_timestamp = slice.back().timestamp;
                if (prov_win.record_count == 0)
                    prov_win.first_timestamp = slice.front().timestamp;
                prov_win.record_count += count;
                prov_win.last_timestamp = slice.back().timestamp;
                result.records += count;
                if (records_ctr)
                    records_ctr->add(count);
            }
            if (j < n) {
                // batch[j] belongs to a later window; close the current
                // one and jump straight to the window that owns it
                // (empty intervening windows emit nothing).
                closeWindow(batch[j].timestamp / options.window_span);
                // A window close is a quiescent committed point only
                // between batches, so the periodic checkpoint below
                // covers it; mid-batch we just keep feeding.
            }
            i = j;
        }
    };

    std::vector<IoRequest> batch;
    std::uint64_t backoff = options.poll_min_us;
    std::uint64_t idle_run = 0;
    std::uint64_t stall_run = 0;
    std::uint64_t since_checkpoint = 0;

    for (;;) {
        if (options.stop && options.stop())
            break;
        std::size_t n = source.nextBatch(batch, options.batch_records);
        if (n == 0) {
            if (tail.endOfStream()) {
                result.end_of_stream = true;
                break;
            }
            ++idle_run;
            if (tail.bytesVisible() > tail.committedOffset())
                ++stall_run;
            else
                stall_run = 0;
            if (options.stall_poll_limit &&
                stall_run >= options.stall_poll_limit) {
                result.degraded = true;
                std::ostringstream oss;
                oss << "tail stalled: "
                    << tail.bytesVisible() - tail.committedOffset()
                    << " bytes visible past offset "
                    << tail.committedOffset() << " made no progress in "
                    << stall_run << " consecutive polls";
                result.degraded_reason = std::move(oss).str();
                break;
            }
            if (options.idle_exit_polls &&
                idle_run >= options.idle_exit_polls)
                break;
            sleep(backoff);
            backoff = std::min(backoff * 2, options.poll_max_us);
            continue;
        }
        idle_run = 0;
        stall_run = 0;
        backoff = options.poll_min_us;
        feed(batch);
        since_checkpoint += n;
        if (options.checkpoint_every &&
            since_checkpoint >= options.checkpoint_every) {
            checkpoint();
            since_checkpoint = 0;
        }
    }

    // Drain-then-flush: the open window becomes a partial like any
    // other (so a directory merge sees every consumed record), then one
    // last checkpoint records the final committed position.
    if (prov_win.record_count > 0 || result.windows == 0)
        closeWindow(window_index + 1);
    if (!options.cumulative_partial.empty())
        writeSnapshotFile(options.cumulative_partial, cumulative,
                          prov_cum);
    checkpoint();
    writeProm();

    result.polls = tail.pollCount();
    result.idle_polls = tail.idlePolls();
    result.window_index = window_index;
    result.committed_offset = tail.committedOffset();
    result.committed_records = tail.committedRecords();
    return result;
}

} // namespace cbs
