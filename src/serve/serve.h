/**
 * @file
 * runServe: the long-running online analysis supervisor behind
 * `cbs_tool serve` (docs/serving.md).
 *
 * The batch pipelines answer "what did this trace do"; serve answers
 * "what is this stream doing" while the trace is still being written.
 * A tailing source (trace/tailing.h) feeds two un-finalized analyzer
 * bundles in lockstep:
 *
 *   cumulative  everything consumed since stream start — the state a
 *               batch run over the same prefix would hold;
 *   window      the current tumbling trace-time window [k*span,
 *               (k+1)*span).
 *
 * Batches are split at window boundaries, so a window bundle sees
 * exactly the records of its span. Closing a window emits, in order:
 * the window's pre-finalize cbs.snapshot.v1 partial (window-NNNNNN.cbss
 * — consecutive windows are contiguous record slices, so `cbs_tool
 * merge <dir>` reconstructs the batch run byte-for-byte), the window's
 * finalized cbs.summary.v1 JSON (window-NNNNNN.json), and a refreshed
 * Prometheus exposition of the metrics registry (metrics.prom). A
 * fourth per-window product, the time-decayed sketch stats
 * (WindowSketches: P² length quantiles, SpaceSaving hot volumes,
 * reservoir length sample), is recycled via the sketches' reset() and
 * published as serve.window.* gauges.
 *
 * Crash safety: every checkpoint_every records (and at every window
 * close) the supervisor writes one atomic checkpoint file
 * (current.ckpt, format CBSSRV1) holding the committed stream position
 * plus BOTH bundles' snapshots — a single rename, so kill -9 at any
 * instant leaves either the old or the new checkpoint, never a torn
 * mix, and at most one checkpoint interval of tailing is re-read on
 * resume. Resume (readServeCheckpoint -> TailOptions{start_offset,
 * skip_records} -> ServeOptions::resume) replays from the recorded
 * boundary with no lost and no double-counted records; re-emitted
 * window files are regenerated identically, so overwriting them is
 * idempotent.
 *
 * Stall watchdog: bytes visible beyond the committed offset that stay
 * un-consumable for stall_poll_limit consecutive polls (a writer died
 * mid-chunk, or the tail is garbage) flips the run to degraded — the
 * CLI maps that to exit code 4, the same contract as the degraded
 * parallel pipeline.
 */

#ifndef CBS_SERVE_SERVE_H
#define CBS_SERVE_SERVE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/workload_summary.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"
#include "stats/p2_quantile.h"
#include "stats/reservoir.h"
#include "stats/space_saving.h"
#include "trace/tailing.h"

namespace cbs {

/**
 * Per-window sketch stats: bounded-memory distribution estimates that
 * reset with each tumbling window instead of reallocating (the
 * sketches' reset() contract). Published as serve.window.* gauges at
 * window close.
 */
struct WindowSketches
{
    P2Quantile len_p50{0.5};
    P2Quantile len_p99{0.99};
    SpaceSaving hot_volumes{64};           //!< by bytes transferred
    Reservoir<std::uint64_t> lengths{1024}; //!< uniform length sample

    void
    add(const IoRequest &req)
    {
        len_p50.add(req.length);
        len_p99.add(req.length);
        hot_volumes.add(req.volume, req.length);
        lengths.add(req.length);
    }

    void
    reset()
    {
        len_p50.reset();
        len_p99.reset();
        hot_volumes.reset();
        lengths.reset();
    }
};

/** One CBSSRV1 checkpoint: the committed stream position plus both
 *  bundles' cbs.snapshot.v1 bytes, written atomically as one file. */
struct ServeCheckpoint
{
    std::uint64_t committed_offset = 0;  //!< tail byte boundary
    std::uint64_t committed_records = 0; //!< records past that boundary
    std::uint64_t window_index = 0;      //!< open window at capture
    std::vector<unsigned char> cumulative; //!< cbs.snapshot.v1
    std::vector<unsigned char> window;     //!< cbs.snapshot.v1
};

/** Write @p checkpoint to @p path atomically (temp file + rename). */
void writeServeCheckpoint(const std::string &path,
                          const ServeCheckpoint &checkpoint);

/** Read and validate a CBSSRV1 checkpoint (magic, version, CRC,
 *  length framing). Throws SnapshotError on any damage. */
ServeCheckpoint readServeCheckpoint(const std::string &path);

/** Knobs of one serve run; plain aggregate, defaults are inert. */
struct ServeOptions
{
    /** Output directory for window-NNNNNN.{cbss,json}, current.ckpt,
     *  and metrics.prom. Must already exist. */
    std::string out_dir;

    /** Analysis configuration — must match the batch run the window
     *  partials are later compared or merged against (duration
     *  included: the activeness series depends on it). */
    WorkloadSummaryOptions summary{};

    /** Provenance label for emitted snapshots (the trace path). */
    std::string source_id = "serve";

    /** Requests per ingest poll. */
    std::size_t batch_records = 4096;

    /** Tumbling window span in trace time. */
    TimeUs window_span = units::minute;

    /** Checkpoint every this many consumed records, in addition to
     *  the checkpoint at every window close (0 = window closes only). */
    std::uint64_t checkpoint_every = 0;

    /** Stop after this many consecutive idle polls (0 = keep polling
     *  until stop() or end of stream) — the --exit-on-idle contract. */
    std::uint64_t idle_exit_polls = 0;

    /** Degrade after this many consecutive idle polls while bytes sit
     *  unconsumed past the committed offset (0 = watchdog off). */
    std::uint64_t stall_poll_limit = 0;

    /** Idle backoff bounds, microseconds (doubling, capped). */
    std::uint64_t poll_min_us = 1000;
    std::uint64_t poll_max_us = 100000;

    /** Idle sleep hook; defaults to a real sleep. Tests inject a
     *  no-op (or a coordination point) to run wall-clock-free. */
    std::function<void(std::uint64_t)> sleep;

    /** External stop request (SIGINT/SIGTERM flag): checked between
     *  polls; true drains the in-flight batch then flushes. */
    std::function<bool()> stop;

    /** Metrics registry for serve.* instruments and the Prometheus
     *  exposition; optional. Must outlive the run. */
    obs::MetricsRegistry *metrics = nullptr;

    /** When non-empty, the final flush also writes the cumulative
     *  (whole-stream) pre-finalize state as a cbs.snapshot.v1 partial
     *  at this path. Merging the window partials is only exact for
     *  state that unions (boundary-straddling state — updates, RAW/WAW
     *  gaps, sequential runs, interarrival gaps — is attributed per
     *  window); this file is the exact aggregate, byte-identical to a
     *  batch `analyze --emit-partial` over the same records. */
    std::string cumulative_partial;

    /** Resume state from readServeCheckpoint; the caller must have
     *  built the tailing source with the matching TailOptions
     *  {start_offset, skip_records}. Not owned. */
    const ServeCheckpoint *resume = nullptr;
};

/** What a serve run did; degraded maps to CLI exit code 4. */
struct ServeResult
{
    std::uint64_t records = 0;       //!< consumed this run
    std::uint64_t windows = 0;       //!< windows closed this run
    std::uint64_t checkpoints = 0;   //!< checkpoints written
    std::uint64_t polls = 0;         //!< ingest polls issued
    std::uint64_t idle_polls = 0;    //!< polls with no records
    std::uint64_t window_index = 0;  //!< open window at shutdown
    std::uint64_t committed_offset = 0;
    std::uint64_t committed_records = 0;
    bool end_of_stream = false;      //!< source finished cleanly
    bool degraded = false;           //!< watchdog tripped
    std::string degraded_reason;
};

/**
 * Run the serve loop: poll @p source (the outermost decorator —
 * RetryingSource and friends pass an idle 0 through unchanged), feed
 * the cumulative and window bundles, emit and checkpoint per the
 * options. @p tail must be the innermost tailing source of the same
 * stack: it supplies the committed stream position, end-of-stream, and
 * the visible-bytes signal the watchdog reads. Returns when the stream
 * ends, stop() goes true, the idle-exit budget is spent, or the
 * watchdog degrades the run — always after a final window close,
 * checkpoint, and Prometheus flush (drain-then-flush).
 */
ServeResult runServe(TraceSource &source, TailingSource &tail,
                     const ServeOptions &options);

} // namespace cbs

#endif // CBS_SERVE_SERVE_H
