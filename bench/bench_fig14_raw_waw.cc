/**
 * @file
 * Reproduces Fig. 14 and the RAW/WAW half of Table V (Finding 12):
 * elapsed times and counts of read-after-write and write-after-write
 * pairs. The span traces keep durations in true paper units, so the
 * hour-scale values are directly comparable; counts carry the
 * count-scale factor.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/temporal_pairs.h"
#include "common/format.h"
#include "report/series.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 14 + Table V (RAW/WAW) / Finding 12",
        "paper: RAW medians 3.0h (AliCloud) / 16.2h (MSRC); WAW "
        "medians 1.4h / 0.2h; AliCloud WAW count = 8.4x RAW count");

    TextTable table5("Table V: RAW / WAW pair counts (paper-equiv, M)");
    table5.header({"trace", "RAW", "paper", "WAW", "paper"});

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        TemporalPairsAnalyzer pairs;
        runPipeline(*bundle.source, {&pairs});
        bool ali = bundle.label == "AliCloud";

        auto dur = [](double v) { return formatDurationUs(v); };
        std::printf("--- %s (Fig. 14 elapsed-time CDFs) ---\n",
                    bundle.label.c_str());
        printHistQuantiles("RAW time", pairs.times(PairKind::RAW),
                           {0.25, 0.5, 0.75, 0.9}, dur);
        printHistQuantiles("WAW time", pairs.times(PairKind::WAW),
                           {0.25, 0.5, 0.75, 0.9}, dur);
        std::printf(
            "  RAW > 5 min: %s   (paper: %s)\n",
            formatPercent(1 - pairs.times(PairKind::RAW)
                                  .cdfAt(5 * units::minute))
                .c_str(),
            ali ? "93.3%" : "68.8%");
        std::printf(
            "  WAW < 1 min: %s   (paper: %s)\n",
            formatPercent(
                pairs.times(PairKind::WAW).cdfAt(units::minute))
                .c_str(),
            ali ? "22.4%" : "50.6%");
        double waw_to_raw =
            pairs.count(PairKind::RAW)
                ? static_cast<double>(pairs.count(PairKind::WAW)) /
                      static_cast<double>(pairs.count(PairKind::RAW))
                : 0.0;
        std::printf("  WAW/RAW count ratio: %.2f   (paper: %s)\n\n",
                    waw_to_raw, ali ? "8.34" : "0.98");

        auto scaledM = [&](PairKind kind) {
            return formatMillions(static_cast<std::uint64_t>(
                static_cast<double>(pairs.count(kind)) *
                bundle.count_scale));
        };
        table5.row({bundle.label, scaledM(PairKind::RAW),
                    ali ? "12,432.7" : "297.2", scaledM(PairKind::WAW),
                    ali ? "103,708.4" : "289.8"});
    }
    table5.print(std::cout);
    return 0;
}
