/**
 * @file
 * Extension: workload-archetype census of both traces.
 *
 * The traces don't record applications (paper §III-B), but the paper
 * repeatedly infers them from I/O behaviour. This bench runs the
 * rule-based VolumeClassifier over both calibrated populations and
 * reports the archetype mix — the quantified version of the paper's
 * "a large fraction of applications (e.g., backups or journaling)
 * tend to only write data" and "application-level read caches absorb
 * reads" narratives.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/volume_classes.h"
#include "common/format.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Extension: volume archetype census",
        "rule-based inference from op mix + rewrite behaviour; "
        "AliCloud should skew write-heavy, MSRC toward read/mixed");

    TextTable table("Archetype mix (share of classified volumes)");
    table.header({"archetype", "AliCloud", "MSRC"});
    std::array<std::array<double, 2>, kVolumeClassCount> shares{};
    std::array<std::uint32_t, 2> totals{};

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (std::size_t t = 0; t < 2; ++t) {
        printBundleInfo(bundles[t]);
        VolumeClassifier classifier(100);
        runPipeline(*bundles[t].source, {&classifier});
        const auto &hist = classifier.histogram();
        for (std::size_t c = 0; c < kVolumeClassCount; ++c)
            totals[t] += hist[c];
        for (std::size_t c = 0; c < kVolumeClassCount; ++c)
            shares[c][t] = totals[t] ? static_cast<double>(hist[c]) /
                                           totals[t]
                                     : 0.0;
    }
    std::printf("\n");
    for (std::size_t c = 0; c < kVolumeClassCount; ++c) {
        table.row({volumeClassName(static_cast<VolumeClass>(c)),
                   formatPercent(shares[c][0]),
                   formatPercent(shares[c][1])});
    }
    table.print(std::cout);

    std::printf("\nReading: 'write-only-log' volumes are the paper's "
                "never-read backup/journal volumes (the reason read "
                "WSS is only 34%% of total in Table I); "
                "'write-heavy-updater' matches the read-cache-fronted "
                "databases behind Finding 12's WAW dominance.\n");
    return 0;
}
