/**
 * @file
 * Reproduces Figs. 16-17 and Table VI (Finding 14): update intervals
 * of written blocks — overall percentiles, per-volume percentile
 * boxplots, and the four duration-group proportions.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/update_interval.h"
#include "common/format.h"
#include "report/series.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Figs. 16-17 + Table VI / Finding 14: update intervals",
        "paper Table VI (hours): AliCloud 0.03/1.59/15.5/50.3/120.2; "
        "MSRC 0.02/0.03/24.0/24.0/24.1 (bimodal via daily src-control "
        "sweeps)");

    TextTable table6("Table VI: overall update-interval percentiles (h)");
    table6.header(
        {"trace", "p25", "p50", "p75", "p90", "p95", "paper p25-p95"});

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        UpdateIntervalAnalyzer intervals;
        runPipeline(*bundle.source, {&intervals});
        bool ali = bundle.label == "AliCloud";

        auto dur = [](double v) { return formatDurationUs(v); };
        std::printf("--- %s ---\n", bundle.label.c_str());
        std::printf("Fig. 16: per-volume percentile boxplots\n");
        const auto &groups = intervals.percentileGroups();
        for (std::size_t i = 0;
             i < UpdateIntervalAnalyzer::kPercentiles.size(); ++i) {
            char label[32];
            std::snprintf(
                label, sizeof(label), "p%.0f group",
                UpdateIntervalAnalyzer::kPercentiles[i] * 100);
            printBoxplot(label, BoxplotSummary::compute(groups[i]),
                         dur);
        }

        std::printf("Fig. 17: duration-group proportions "
                    "(boxplots across volumes)\n");
        static const char *group_names[] = {"<5 min", "5-30 min",
                                            "30-240 min", ">240 min"};
        auto pct = [](double v) { return formatPercent(v); };
        const auto &dgroups = intervals.durationGroups();
        for (std::size_t g = 0; g < dgroups.size(); ++g)
            printBoxplot(group_names[g],
                         BoxplotSummary::compute(dgroups[g]), pct);
        std::printf("  paper medians: <5min %s, >240min %s\n\n",
                    ali ? "35.2%" : "47.2%", ali ? "38.2%" : "18.9%");

        auto hours = [&](double q) {
            return formatFixed(
                static_cast<double>(intervals.global().quantile(q)) /
                    static_cast<double>(units::hour),
                2);
        };
        table6.row({bundle.label, hours(0.25), hours(0.50), hours(0.75),
                    hours(0.90), hours(0.95),
                    ali ? "0.03/1.59/15.5/50.3/120.2"
                        : "0.02/0.03/24.0/24.0/24.1"});
    }
    table6.print(std::cout);
    return 0;
}
