/**
 * @file
 * Reproduces Fig. 2: cumulative distributions of I/O request sizes —
 * (a) across all requests, (b) per-volume average sizes — with the
 * paper's spot values for comparison.
 */

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/size_stats.h"
#include "common/format.h"
#include "report/series.h"
#include "report/workbench.h"

using namespace cbs;

namespace {

void
report(const TraceBundle &bundle, SizeAnalyzer &sizes)
{
    std::printf("--- %s ---\n", bundle.label.c_str());
    auto kib = [](double v) { return formatFixed(v / 1024.0, 1) + " KiB"; };
    std::printf("Fig 2(a): request size CDFs (all requests)\n");
    printHistQuantiles("reads", sizes.readSizes(),
                       {0.25, 0.5, 0.75, 0.9, 0.99}, kib);
    printHistQuantiles("writes", sizes.writeSizes(),
                       {0.25, 0.5, 0.75, 0.9, 0.99}, kib);
    std::printf("Fig 2(b): per-volume average request sizes\n");
    printCdfQuantiles("avg read size", sizes.volumeAvgReadSizes(),
                      {0.25, 0.5, 0.75, 0.9}, kib);
    printCdfQuantiles("avg write size", sizes.volumeAvgWriteSizes(),
                      {0.25, 0.5, 0.75, 0.9}, kib);
    std::printf("\n");
}

} // namespace

int
main()
{
    printBenchHeader(
        "Fig. 2: cumulative distributions of I/O request sizes",
        "paper: AliCloud p75 read<=32K write<=16K, per-volume avg p75 "
        "39.1K/34.4K; MSRC p75 read<=64K write<=20K, avg p75 "
        "50.8K/15.3K");

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        SizeAnalyzer sizes;
        runPipeline(*bundle.source, {&sizes});
        report(bundle, sizes);
    }
    return 0;
}
