/**
 * @file
 * Reproduces Fig. 6 and Table II (Findings 2-3): per-volume burstiness
 * ratios (peak / average intensity) and the overall aggregate
 * burstiness.
 *
 * Burstiness is a full-duration property (a volume's long-run average
 * vs its hottest minute) that uniform thinning cannot preserve, so
 * this bench runs on the burstiness-calibrated day-long traces
 * (scheduled bursts; see aliCloudBurstinessSpec). Ratios are
 * scale-free; Table II's absolute intensities are reported per volume
 * population and are not directly comparable (DESIGN.md 5).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/load_intensity.h"
#include "common/format.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 6 + Table II / Findings 2-3: burstiness ratios",
        "paper: 20.7% (AliCloud) / 38.9% (MSRC) of volumes above 100; "
        "AliCloud spans a wider range; overall ratios 2.11 / 7.39");

    TextTable table2("Table II: overall intensities (paper-equiv) and "
                     "burstiness");
    table2.header({"metric", "AliCloud", "paper", "MSRC", "paper"});
    std::vector<std::vector<std::string>> rows(3);

    TraceBundle bundles[2] = {aliCloudBurstiness(), msrcBurstiness()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        LoadIntensityAnalyzer intensity(units::minute);
        runPipeline(*bundle.source, {&intensity});
        bool ali = bundle.label == "AliCloud";

        const Ecdf &ratios = intensity.burstinessRatios();
        std::printf("--- %s (Fig. 6 CDF spot values) ---\n",
                    bundle.label.c_str());
        for (double t : {1.0, 10.0, 100.0, 1000.0}) {
            std::printf("  burstiness <= %-6g: %s of volumes\n", t,
                        formatPercent(ratios.at(t)).c_str());
        }
        std::printf("  ratio > 100:  %s   (paper: %s)\n",
                    formatPercent(1 - ratios.at(100.0)).c_str(),
                    ali ? "20.7%" : "38.9%");
        std::printf("  ratio < 10:   %s   (paper: %s)\n",
                    formatPercent(ratios.at(10.0)).c_str(),
                    ali ? "25.8%" : "2.78%");
        std::printf("  ratio > 1000: %s   (paper: %s)\n\n",
                    formatPercent(1 - ratios.at(1000.0)).c_str(),
                    ali ? "2.60%" : "0%");

        const IntensityStats &overall = intensity.overall();
        double scale = bundle.count_scale;
        rows[0].push_back(formatFixed(
            overall.peakIntensity(units::minute) * scale, 1));
        rows[0].push_back(ali ? "15965.8" : "5296.8");
        rows[1].push_back(
            formatFixed(overall.avgIntensity() * scale, 1));
        rows[1].push_back(ali ? "7554.1" : "717.0");
        rows[2].push_back(
            formatFixed(overall.burstinessRatio(units::minute), 2));
        rows[2].push_back(ali ? "2.11" : "7.39");
    }

    table2.row({"peak intensity (req/s)", rows[0][0], rows[0][1],
                rows[0][2], rows[0][3]});
    table2.row({"average intensity (req/s)", rows[1][0], rows[1][1],
                rows[1][2], rows[1][3]});
    table2.row({"burstiness ratio", rows[2][0], rows[2][1], rows[2][2],
                rows[2][3]});
    table2.print(std::cout);
    return 0;
}
