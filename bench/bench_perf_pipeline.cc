/**
 * @file
 * Perf: serial vs. sharded analysis pipeline.
 *
 * Production traces are billions of requests (Table I), so the
 * end-to-end analyzer sweep is the toolkit's long pole. This bench runs
 * the full shardable analyzer set over the calibrated AliCloud trace
 * once serially (runPipeline) and once per shard count
 * (runPipelineParallel with 1, 2, 4, 8 shards), reporting throughput
 * and speedup. The trace is materialized up front so generation cost
 * stays out of the measurement.
 *
 * Every run executes with an obs::MetricsRegistry attached, so the
 * measured configuration is the instrumented one (the observability
 * layer is required to stay within noise of the bare pipeline), and
 * --json embeds each run's registry dump — ingest totals, per-analyzer
 * timings, per-shard queue stats — next to its wall-clock numbers.
 *
 * A second section measures the on-disk format substrate: the same
 * trace is materialized as AliCloud CSV, CBST binary, and CBT2
 * columnar files, then timed decode-only (pure ingest) and end-to-end
 * (ingest + 4-shard pipeline), plus a multi-lane CBT2 run where
 * split(4) partitions feed four parallel decoders. Speedups in that
 * section are relative to the CSV row of the same kind.
 *
 * A third section times the two-pass cache simulation
 * (CacheMissAnalyzer) serially and through runTwoPassParallel at 2, 4,
 * and 8 shards, then its single-pass replacements — the exact Mattson
 * MRC engine (cache-mrc-serial) and the SHARDS-sampled variant
 * (cache-mrc-shards) — over one pipeline pass each; speedups are
 * relative to the two-pass serial row.
 *
 * A fourth section times the snapshot substrate: serializing the full
 * pre-finalize analyzer bundle to cbs.snapshot.v1 bytes, deserializing
 * them back, and merging two deserialized bundles — the per-partial
 * overhead of the emit-partial / merge / resume workflow.
 *
 * A fifth section times the serve substrate: the online tailing
 * supervisor (`cbs_tool serve`) draining the finished CSV file with
 * one giant window (pure online ingest), with day windows (adding the
 * per-window snapshot/JSON/exposition close), and the CBSSRV1
 * checkpoint write+read round trip of the end-of-run state.
 *
 * A sixth section times the comparative axis: app::runCompare over
 * the three on-disk encodings of the bench trace (csv, bin, cbt2) —
 * three full analysis runs plus the cbs.compare.v1 render — serially
 * and with 4 shards per run. Speedup is relative to the serial row.
 *
 * A seventh section microbenchmarks the replacement-policy substrate:
 * raw access() throughput of the slab-allocated LRU/ARC/LFU against
 * the list-based reference implementations on one Zipf key stream,
 * plus FIFO and CLOCK for context. Speedups are relative to the
 * matching list row.
 *
 * --json <path> additionally writes the measurements as JSON for
 * machine consumption (CI trend tracking).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/basic_stats.h"
#include "analysis/block_traffic.h"
#include "analysis/cache_miss.h"
#include "analysis/cache_mrc.h"
#include "analysis/interarrival.h"
#include "analysis/load_intensity.h"
#include "analysis/parallel_pipeline.h"
#include "analysis/randomness.h"
#include "analysis/size_stats.h"
#include "analysis/temporal_pairs.h"
#include "analysis/update_coverage.h"
#include "analysis/update_interval.h"
#include "analysis/workload_summary.h"
#include "app/compare.h"
#include "cache/cache_policy.h"
#include "cache/reference_policies.h"
#include "common/format.h"
#include "common/simd.h"
#include "obs/metrics.h"
#include "report/workbench.h"
#include "serve/serve.h"
#include "snapshot/snapshot.h"
#include "synth/rng.h"
#include "synth/zipf.h"
#include "trace/bin_trace.h"
#include "trace/cbt2.h"
#include "trace/csv.h"
#include "trace/open.h"
#include "trace/tailing.h"
#include "trace/trace_source.h"

using namespace cbs;

namespace {

/** The nine shardable analyzers, fresh per run. */
struct AnalyzerSet
{
    BasicStatsAnalyzer basic;
    SizeAnalyzer sizes;
    LoadIntensityAnalyzer intensity;
    InterarrivalAnalyzer interarrival;
    RandomnessAnalyzer randomness;
    UpdateCoverageAnalyzer coverage;
    BlockTrafficAnalyzer traffic;
    TemporalPairsAnalyzer pairs;
    UpdateIntervalAnalyzer intervals;

    std::vector<Analyzer *>
    all()
    {
        return {&basic,    &sizes,    &intensity,
                &interarrival, &randomness, &coverage,
                &traffic,  &pairs,    &intervals};
    }
};

struct Measurement
{
    std::string label;
    std::size_t shards = 0; //!< 0 = serial
    double seconds = 0.0;
    double mreq_per_s = 0.0;
    double speedup = 1.0;
    // e2e rows split their wall time into ingest and analysis using
    // the matching decode-only row; negative = not applicable.
    double decode_seconds = -1.0;
    double analyze_seconds = -1.0;
    std::string metrics_json; //!< per-run registry dump
};

/** Batch size for every pipeline run; --batch-records overrides. */
std::size_t g_batch_records = 4096;

/** One timed pass, metrics attached; returns seconds and the dump. */
double
timedRun(VectorSource &requests, bool parallel, std::size_t shards,
         bool columnar, std::string &metrics_json)
{
    requests.reset();
    AnalyzerSet set;
    obs::MetricsRegistry registry;
    requests.attachMetrics(registry);
    auto start = std::chrono::steady_clock::now();
    if (parallel) {
        ParallelOptions options;
        options.shards = shards;
        options.batch_size = g_batch_records;
        options.columnar = columnar;
        options.metrics = &registry;
        runPipelineParallel(requests, set.all(), options);
    } else {
        PipelineOptions options;
        options.batch_records = g_batch_records;
        options.columnar = columnar;
        options.metrics = &registry;
        runPipeline(requests, set.all(), options);
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    requests.detachMetrics();
    std::ostringstream dump;
    registry.writeJson(dump);
    metrics_json = dump.str();
    return seconds;
}

/** Drain a source batch-wise; returns elapsed seconds. */
double
timedDecode(TraceSource &source)
{
    std::vector<IoRequest> batch;
    auto start = std::chrono::steady_clock::now();
    while (source.nextBatch(batch, 8192) > 0) {
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The three on-disk encodings of the bench trace. */
struct FormatFiles
{
    std::string csv;
    std::string bin;
    std::string cbt2;

    ~FormatFiles()
    {
        std::error_code ec;
        for (const std::string *path : {&csv, &bin, &cbt2})
            if (!path->empty())
                std::filesystem::remove(*path, ec);
    }
};

void
materialize(const VectorSource &requests, FormatFiles &files)
{
    auto dir = std::filesystem::temp_directory_path();
    files.csv = (dir / "cbs_bench_trace.csv").string();
    files.bin = (dir / "cbs_bench_trace.bin").string();
    files.cbt2 = (dir / "cbs_bench_trace.cbt2").string();
    {
        std::ofstream out(files.csv);
        AliCloudCsvWriter writer(out);
        for (const IoRequest &req : requests.requests())
            writer.write(req);
    }
    {
        std::ofstream out(files.bin, std::ios::binary);
        BinTraceWriter writer(out);
        for (const IoRequest &req : requests.requests())
            writer.write(req);
        writer.finish();
    }
    {
        std::ofstream out(files.cbt2, std::ios::binary);
        Cbt2Writer writer(out);
        for (const IoRequest &req : requests.requests())
            writer.write(req);
        writer.finish();
    }
}

/** End-to-end: open the file, run the 4-shard pipeline over it. */
double
timedFormatRun(const std::string &path, std::size_t ingest_lanes,
               std::string &metrics_json)
{
    AnalyzerSet set;
    obs::MetricsRegistry registry;
    TraceOpenOptions open_options;
    open_options.metrics = &registry;
    auto opened = openTraceSource(path, open_options);
    auto start = std::chrono::steady_clock::now();
    ParallelOptions options;
    options.shards = 4;
    options.batch_size = g_batch_records;
    options.ingest_lanes = ingest_lanes;
    options.metrics = &registry;
    runPipelineParallel(opened->source(), set.all(), options);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    std::ostringstream dump;
    registry.writeJson(dump);
    metrics_json = dump.str();
    return seconds;
}

void
writeJson(const std::string &path, std::uint64_t requests,
          const std::vector<Measurement> &rows)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"perf_pipeline\",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"config\": {\"batch_records\": " << g_batch_records
        << ", \"columnar\": true, \"simd\": \"" << simdVariant()
        << "\", \"compiler\": \"" << __VERSION__ << "\"},\n"
        << "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Measurement &m = rows[i];
        char buf[384];
        std::snprintf(buf, sizeof(buf),
                      "    {\"label\": \"%s\", \"shards\": %zu, "
                      "\"seconds\": %.6f, \"mreq_per_s\": %.3f, "
                      "\"speedup\": %.3f",
                      m.label.c_str(), m.shards, m.seconds,
                      m.mreq_per_s, m.speedup);
        out << buf;
        if (m.decode_seconds >= 0) {
            std::snprintf(buf, sizeof(buf),
                          ", \"decode_seconds\": %.6f, "
                          "\"analyze_seconds\": %.6f",
                          m.decode_seconds, m.analyze_seconds);
            out << buf;
        }
        out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        // Registry dumps are standalone objects; indent is cosmetic.
        // Rows without an attached registry get null so the file
        // stays parseable.
        out << "    {\"label\": \"" << rows[i].label
            << "\", \"registry\": "
            << (rows[i].metrics_json.empty() ? "null"
                                             : rows[i].metrics_json)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote JSON to %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    double request_target = 2.0e6;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            request_target = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--batch-records") == 0 &&
                   i + 1 < argc) {
            g_batch_records = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
            if (g_batch_records == 0)
                g_batch_records = 4096;
        } else {
            std::fprintf(stderr,
                         "usage: bench_perf_pipeline [--json out.json] "
                         "[--requests N] [--batch-records N]\n");
            return 2;
        }
    }

    printBenchHeader(
        "Perf: serial vs. sharded analysis pipeline",
        "full shardable analyzer set; identical results per run");

    TraceBundle bundle = aliCloudSpan(SpanScale{40, request_target});
    printBundleInfo(bundle);
    VectorSource requests(drain(*bundle.source));
    std::uint64_t count = requests.requests().size();
    std::printf("requests: %s, hardware threads: %u\n\n",
                formatCount(count).c_str(),
                std::thread::hardware_concurrency());

    std::vector<Measurement> rows;
    auto record = [&](const std::string &label, std::size_t shards,
                      double sec, double baseline) {
        Measurement m;
        m.label = label;
        m.shards = shards;
        m.seconds = sec;
        m.mreq_per_s = static_cast<double>(count) / sec / 1e6;
        m.speedup = baseline / sec;
        rows.push_back(m);
        std::printf("%-12s  %8.3fs  %8.2f Mreq/s  %6.2fx\n",
                    label.c_str(), sec, m.mreq_per_s, m.speedup);
    };

    std::printf("%-12s  %9s  %14s  %7s\n", "config", "time",
                "throughput", "speedup");
    std::string metrics_json;
    double serial_sec =
        timedRun(requests, false, 0, true, metrics_json);
    record("serial", 0, serial_sec, serial_sec);
    rows.back().metrics_json = metrics_json;
    // Attribution row: the legacy row-at-a-time path on the same
    // trace, so the columnar speedup is visible in one file.
    double scalar_sec =
        timedRun(requests, false, 0, false, metrics_json);
    record("serial-scalar", 0, scalar_sec, serial_sec);
    rows.back().metrics_json = metrics_json;
    for (std::size_t shards : {1, 2, 4, 8}) {
        double sec =
            timedRun(requests, true, shards, true, metrics_json);
        record("shards=" + std::to_string(shards), shards, sec,
               serial_sec);
        rows.back().metrics_json = metrics_json;
    }

    // Format substrate: the same trace from disk in each encoding.
    std::printf("\nformat substrate (decode-only, then e2e with "
                "4 shards; speedup vs the csv row):\n");
    FormatFiles files;
    materialize(requests, files);
    std::printf("file sizes: csv %s, bin %s, cbt2 %s\n\n",
                formatBytes(std::filesystem::file_size(files.csv))
                    .c_str(),
                formatBytes(std::filesystem::file_size(files.bin))
                    .c_str(),
                formatBytes(std::filesystem::file_size(files.cbt2))
                    .c_str());
    std::printf("%-16s  %9s  %14s  %7s\n", "config", "time",
                "throughput", "speedup");

    auto decodeSeconds = [&](const std::string &path) {
        auto opened = openTraceSource(path);
        return timedDecode(opened->source());
    };
    double decode_csv = decodeSeconds(files.csv);
    record("decode-csv", 0, decode_csv, decode_csv);
    record("decode-bin", 0, decodeSeconds(files.bin), decode_csv);
    record("decode-cbt2", 0, decodeSeconds(files.cbt2), decode_csv);

    // Multi-lane decode: split(4) partitions drained concurrently.
    {
        auto reader = Cbt2Reader::fromFile(files.cbt2);
        auto partitions = reader->split(4);
        auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        threads.reserve(partitions.size());
        for (auto &partition : partitions)
            threads.emplace_back(
                [&partition] { timedDecode(*partition); });
        for (auto &thread : threads)
            thread.join();
        double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        record("decode-cbt2-lane" + std::to_string(partitions.size()),
               0, sec, decode_csv);
    }

    // Attribute each e2e row's wall time: its format's decode-only
    // seconds are the ingest share, the rest is analysis (overlapped
    // in reality — the split shows which side dominates).
    auto splitRow = [&](double decode_sec) {
        Measurement &m = rows.back();
        m.decode_seconds = decode_sec;
        m.analyze_seconds = std::max(0.0, m.seconds - decode_sec);
    };
    double decode_bin = rows[rows.size() - 3].seconds;
    double decode_cbt2 = rows[rows.size() - 2].seconds;
    double decode_cbt2_lanes = rows[rows.size() - 1].seconds;
    double e2e_csv = timedFormatRun(files.csv, 1, metrics_json);
    record("e2e-csv", 4, e2e_csv, e2e_csv);
    rows.back().metrics_json = metrics_json;
    splitRow(decode_csv);
    record("e2e-bin", 4, timedFormatRun(files.bin, 1, metrics_json),
           e2e_csv);
    rows.back().metrics_json = metrics_json;
    splitRow(decode_bin);
    record("e2e-cbt2", 4, timedFormatRun(files.cbt2, 1, metrics_json),
           e2e_csv);
    rows.back().metrics_json = metrics_json;
    splitRow(decode_cbt2);
    record("e2e-cbt2-lanes4", 4,
           timedFormatRun(files.cbt2, 4, metrics_json), e2e_csv);
    rows.back().metrics_json = metrics_json;
    splitRow(decode_cbt2_lanes);

    // Cache simulation: WSS pass + simulation pass over the same
    // trace, serial vs runTwoPassParallel.
    std::printf("\ncache simulation (two passes, policy=lru, "
                "fractions 0.01/0.10; speedup vs cache-serial):\n");
    std::printf("%-16s  %9s  %14s  %7s\n", "config", "time",
                "throughput", "speedup");
    auto timedCacheRun = [&](std::size_t shards,
                             std::string &metrics) {
        requests.reset();
        CacheMissAnalyzer analyzer({0.01, 0.10}, kDefaultBlockSize,
                                   "lru");
        obs::MetricsRegistry registry;
        auto start = std::chrono::steady_clock::now();
        if (shards == 0) {
            analyzer.runTwoPass(requests);
        } else {
            ParallelOptions options;
            options.shards = shards;
            options.metrics = &registry;
            analyzer.runTwoPassParallel(requests, options);
        }
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        std::ostringstream dump;
        registry.writeJson(dump);
        metrics = dump.str();
        return seconds;
    };
    double cache_serial = timedCacheRun(0, metrics_json);
    record("cache-serial", 0, cache_serial, cache_serial);
    for (std::size_t shards : {2, 4, 8}) {
        double sec = timedCacheRun(shards, metrics_json);
        record("cache-shards=" + std::to_string(shards), shards, sec,
               cache_serial);
        rows.back().metrics_json = metrics_json;
    }

    // Single-pass replacements for the same LRU characterization: the
    // exact Mattson MRC engine and the SHARDS-sampled variant, each
    // one serial pipeline pass over the trace. Speedup stays relative
    // to the two-pass serial row — that is the replaced baseline.
    auto timedMrcRun = [&](double rate) {
        requests.reset();
        CacheMrcAnalyzer analyzer({0.01, 0.10}, kDefaultBlockSize,
                                  rate);
        PipelineOptions options;
        options.batch_records = g_batch_records;
        auto start = std::chrono::steady_clock::now();
        runPipeline(requests, {&analyzer}, options);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    record("cache-mrc-serial", 0, timedMrcRun(0.0), cache_serial);
    record("cache-mrc-shards", 0, timedMrcRun(0.01), cache_serial);

    // Snapshot substrate: encode / decode / merge of the full
    // pre-finalize bundle state — the fixed per-partial cost the
    // emit-partial / merge / resume workflow adds on top of analysis.
    {
        requests.reset();
        WorkloadSummary snap_summary;
        PipelineOptions snap_pipeline;
        snap_pipeline.batch_records = g_batch_records;
        snap_pipeline.finalize = false;
        snap_summary.run(requests, snap_pipeline);
        SnapshotProvenance provenance{"bench", count, 0, 0};
        std::vector<unsigned char> bytes =
            encodeSnapshot(snap_summary, provenance);
        std::printf("\nsnapshot substrate (cbs.snapshot.v1, %s of "
                    "state; throughput in trace Mreq represented; "
                    "speedup vs snapshot-serialize):\n",
                    formatBytes(bytes.size()).c_str());
        std::printf("%-20s  %9s  %14s  %7s\n", "config", "time",
                    "throughput", "speedup");
        const int reps = 5;
        auto repeated = [&](auto &&body) {
            auto start = std::chrono::steady_clock::now();
            for (int i = 0; i < reps; ++i)
                body();
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count() /
                   reps;
        };
        double encode_sec = repeated([&] {
            bytes = encodeSnapshot(snap_summary, provenance);
        });
        record("snapshot-serialize", 0, encode_sec, encode_sec);
        double decode_sec = repeated([&] {
            WorkloadSummary into;
            decodeSnapshot(bytes.data(), bytes.size(), "bench", into);
        });
        record("snapshot-deserialize", 0, decode_sec, encode_sec);
        // Merge cost alone: fresh decoded operands per rep, clock
        // running only around mergeFrom.
        double merge_total = 0.0;
        for (int i = 0; i < reps; ++i) {
            WorkloadSummary a, b;
            decodeSnapshot(bytes.data(), bytes.size(), "bench", a);
            decodeSnapshot(bytes.data(), bytes.size(), "bench", b);
            auto start = std::chrono::steady_clock::now();
            a.mergeFrom(b);
            merge_total += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        }
        record("snapshot-merge", 0, merge_total / reps, encode_sec);
    }

    // Serve substrate: the online tailing loop over the finished csv
    // file — what `cbs_tool serve` costs per record relative to batch
    // ingest, and what windowing and checkpointing add on top.
    {
        std::string serve_dir =
            (std::filesystem::temp_directory_path() / "cbs_bench_serve")
                .string();
        std::filesystem::remove_all(serve_dir);
        std::filesystem::create_directories(serve_dir);
        std::printf("\nserve substrate (tailing the csv file through "
                    "the online supervisor; speedup vs serve-ingest):"
                    "\n");
        std::printf("%-16s  %9s  %14s  %7s\n", "config", "time",
                    "throughput", "speedup");
        auto timedServe = [&](TimeUs window_span,
                              std::uint64_t checkpoint_every) {
            TailingCsvSource tail(files.csv);
            ServeOptions options;
            options.out_dir = serve_dir;
            options.source_id = "bench";
            options.batch_records = g_batch_records;
            options.window_span = window_span;
            options.checkpoint_every = checkpoint_every;
            options.idle_exit_polls = 1;
            options.sleep = [](std::uint64_t) {};
            auto start = std::chrono::steady_clock::now();
            runServe(tail, tail, options);
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };
        // One giant window isolates pure online ingest + analysis;
        // day windows add the per-window close (snapshot + JSON +
        // exposition) at the cadence a production tail would see.
        double serve_sec = timedServe(365ull * 24 * units::hour, 0);
        record("serve-ingest", 0, serve_sec, serve_sec);
        record("serve-windowed", 0, timedServe(24 * units::hour, 0),
               serve_sec);

        // Checkpoint cost alone: a CBSSRV1 write + validated read of
        // the end-of-run state (full cumulative bundle, fresh window
        // bundle — the shape of a post-window-close checkpoint).
        {
            requests.reset();
            WorkloadSummary state;
            PipelineOptions pipeline;
            pipeline.batch_records = g_batch_records;
            pipeline.finalize = false;
            state.run(requests, pipeline);
            ServeCheckpoint ck;
            ck.committed_offset =
                std::filesystem::file_size(files.csv);
            ck.cumulative =
                encodeSnapshot(state, {"bench", count, 0, 0});
            WorkloadSummary empty;
            ck.window = encodeSnapshot(empty, {"bench", 0, 0, 0});
            std::string ckpt = serve_dir + "/bench.ckpt";
            const int reps = 5;
            auto start = std::chrono::steady_clock::now();
            for (int i = 0; i < reps; ++i) {
                writeServeCheckpoint(ckpt, ck);
                readServeCheckpoint(ckpt);
            }
            double sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count() /
                         reps;
            record("serve-checkpoint", 0, sec, serve_sec);
        }
        std::filesystem::remove_all(serve_dir);
    }

    // Comparative axis: N full analysis runs plus the side-by-side
    // render — what `cbs_tool compare` costs over already-materialized
    // traces, and how much per-run sharding claws back.
    {
        std::printf("\ncompare substrate (3-way csv/bin/cbt2 compare "
                    "through app::runCompare; speedup vs "
                    "compare-serial):\n");
        std::printf("%-16s  %9s  %14s  %7s\n", "config", "time",
                    "throughput", "speedup");
        auto timedCompare = [&](std::optional<std::size_t> threads) {
            app::CompareOptions options;
            options.paths = {files.csv, files.bin, files.cbt2};
            options.base.threads = threads;
            options.base.batch_records = g_batch_records;
            auto start = std::chrono::steady_clock::now();
            app::CompareResult result = app::runCompare(options);
            std::ostringstream sink;
            app::writeCompareJson(sink, result);
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };
        // Throughput counts each trace's records once: 3x the bundle.
        std::uint64_t total = 3 * count;
        auto recordCompare = [&](const std::string &label,
                                 std::size_t shards, double sec,
                                 double baseline) {
            Measurement m;
            m.label = label;
            m.shards = shards;
            m.seconds = sec;
            m.mreq_per_s = static_cast<double>(total) / sec / 1e6;
            m.speedup = baseline / sec;
            rows.push_back(m);
            std::printf("%-16s  %8.3fs  %8.2f Mreq/s  %6.2fx\n",
                        m.label.c_str(), sec, m.mreq_per_s, m.speedup);
        };
        double compare_serial = timedCompare(std::nullopt);
        recordCompare("compare-serial", 0, compare_serial,
                      compare_serial);
        recordCompare("compare-shards=4", 4, timedCompare(4),
                      compare_serial);
    }

    // Replacement-policy substrate: raw access() throughput, slab
    // variants vs the list-based references on one Zipf key stream.
    const std::size_t cache_capacity = 1 << 15;
    std::size_t n_keys = static_cast<std::size_t>(request_target);
    std::vector<std::uint64_t> keys;
    keys.reserve(n_keys);
    {
        Rng rng(42);
        ZipfSampler zipf(4 * cache_capacity, 0.9);
        for (std::size_t i = 0; i < n_keys; ++i)
            keys.push_back(zipf.sample(rng));
    }
    std::printf("\nreplacement-policy substrate (%s-entry caches, "
                "%s zipf-0.9 keys; speedup vs the matching list "
                "row):\n",
                formatCount(cache_capacity).c_str(),
                formatCount(n_keys).c_str());
    std::printf("%-16s  %9s  %14s  %7s\n", "config", "time",
                "throughput", "speedup");
    std::uint64_t hits_sink = 0; // keeps access() observable
    auto timedPolicy = [&](CachePolicy &policy) {
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t key : keys)
            hits_sink += policy.access(key);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    auto recordOps = [&](const std::string &label, double sec,
                         double baseline) {
        Measurement m;
        m.label = label;
        m.seconds = sec;
        m.mreq_per_s = static_cast<double>(n_keys) / sec / 1e6;
        m.speedup = baseline / sec;
        rows.push_back(m);
        std::printf("%-16s  %8.3fs  %8.2f Macc/s  %6.2fx\n",
                    label.c_str(), sec, m.mreq_per_s, m.speedup);
    };
    struct PolicyRow
    {
        const char *name;
        std::unique_ptr<CachePolicy> reference; // null: no list twin
    };
    PolicyRow policy_rows[] = {
        {"lru", std::make_unique<ListLruCache>(cache_capacity)},
        {"arc", std::make_unique<ListArcCache>(cache_capacity)},
        {"lfu", std::make_unique<ListLfuCache>(cache_capacity)},
        {"fifo", nullptr},
        {"clock", nullptr},
    };
    for (PolicyRow &row : policy_rows) {
        double list_sec = 0;
        if (row.reference) {
            list_sec = timedPolicy(*row.reference);
            recordOps("policy-list-" + std::string(row.name), list_sec,
                      list_sec);
        }
        auto slab = makeCachePolicy(row.name, cache_capacity);
        double sec = timedPolicy(*slab);
        recordOps("policy-" + std::string(row.name), sec,
                  row.reference ? list_sec : sec);
    }
    std::printf("(hit checksum: %s)\n",
                formatCount(hits_sink).c_str());

    if (!json_path.empty())
        writeJson(json_path, count, rows);
    return 0;
}
