/**
 * @file
 * Reproduces Fig. 9 (Findings 5-7): cumulative distributions of active
 * time periods across volumes, for all / read-only / write-only
 * activity. Interval widths are scaled as in bench_fig8 (DESIGN.md §5).
 */

#include <cstdio>

#include "analysis/activeness.h"
#include "analysis/analyzer.h"
#include "common/format.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 9 / Findings 5-7: active time periods across volumes",
        "paper: >72.2% (AliCloud) / 55.6% (MSRC) of volumes active "
        "during 95% of the trace; read-active time is far lower");

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        bool ali = bundle.label == "AliCloud";
        TimeUs interval =
            ali ? 12 * units::hour : 10 * units::minute;
        ActivenessAnalyzer act(interval, bundle.spec.duration);
        runPipeline(*bundle.source, {&act});

        double interval_days =
            static_cast<double>(interval) / units::day;
        std::printf("--- %s ---\n", bundle.label.c_str());
        std::printf(
            "  volumes active >=95%% of trace:       %s   (paper: %s)\n",
            formatPercent(act.fractionActiveAtLeast(
                              ActivenessAnalyzer::kActive, 0.95))
                .c_str(),
            ali ? "72.2%" : "55.6%");
        std::printf(
            "  write-active >=95%% of trace:         %s\n",
            formatPercent(act.fractionActiveAtLeast(
                              ActivenessAnalyzer::kWriteActive, 0.95))
                .c_str());
        std::printf(
            "  read-active >=95%% of trace:          %s\n",
            formatPercent(act.fractionActiveAtLeast(
                              ActivenessAnalyzer::kReadActive, 0.95))
                .c_str());

        const Ecdf &read_periods =
            act.activePeriods(ActivenessAnalyzer::kReadActive);
        double median_read_days =
            read_periods.quantile(0.5) * interval_days;
        std::printf(
            "  median read-active time: %.2f days   (paper: %s)\n\n",
            median_read_days, ali ? "1.28 days" : "2.66 days");
    }
    return 0;
}
