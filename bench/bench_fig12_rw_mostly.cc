/**
 * @file
 * Reproduces Fig. 12 and Table III (Finding 10): read and write
 * traffic aggregating in read-mostly and write-mostly blocks
 * (>95% single-direction traffic).
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/block_traffic.h"
#include "common/format.h"
#include "report/series.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 12 + Table III / Finding 10: read/write-mostly blocks",
        "paper: AliCloud 59.2% of reads to read-mostly, 80.7% of "
        "writes to write-mostly; MSRC 75.9% / 33.5%");

    TextTable table3("Table III: overall traffic to r/w-mostly blocks");
    table3.header({"metric", "AliCloud", "paper", "MSRC", "paper"});
    std::vector<std::string> r_cells, w_cells;

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        BlockTrafficAnalyzer traffic;
        runPipeline(*bundle.source, {&traffic});

        std::printf("--- %s (Fig. 12 CDF across volumes) ---\n",
                    bundle.label.c_str());
        auto pct = [](double v) { return formatPercent(v); };
        printCdfQuantiles("reads to read-mostly",
                          traffic.readMostlyShares(),
                          {0.1, 0.25, 0.5, 0.75}, pct);
        printCdfQuantiles("writes to write-mostly",
                          traffic.writeMostlyShares(),
                          {0.1, 0.25, 0.5, 0.75}, pct);
        std::printf("  medians: reads %s (paper %s), writes %s "
                    "(paper %s)\n\n",
                    pct(traffic.readMostlyShares().quantile(0.5)).c_str(),
                    bundle.label == "AliCloud" ? "83%" : "90%",
                    pct(traffic.writeMostlyShares().quantile(0.5)).c_str(),
                    bundle.label == "AliCloud" ? "99%" : "75%");

        r_cells.push_back(pct(traffic.overallReadToReadMostly()));
        w_cells.push_back(pct(traffic.overallWriteToWriteMostly()));
    }

    table3.row({"reads to read-mostly blocks", r_cells[0], "59.2%",
                r_cells[1], "75.9%"});
    table3.row({"writes to write-mostly blocks", w_cells[0], "80.7%",
                w_cells[1], "33.5%"});
    table3.print(std::cout);
    return 0;
}
