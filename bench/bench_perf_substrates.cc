/**
 * @file
 * Microbenchmarks of the performance-critical substrates
 * (google-benchmark). Production traces are billions of requests, so
 * per-request costs here bound end-to-end analysis time: the hash map,
 * the log histogram, the cache policies, the reuse-distance tree, the
 * generator, and CSV/binary parsing.
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/basic_stats.h"
#include "analysis/temporal_pairs.h"
#include "cache/cache_policy.h"
#include "cache/reuse_distance.h"
#include "common/flat_map.h"
#include "stats/log_histogram.h"
#include "stats/p2_quantile.h"
#include "synth/models.h"
#include "synth/rng.h"
#include "synth/zipf.h"
#include "trace/bin_trace.h"
#include "trace/csv.h"

namespace cbs {
namespace {

void
BM_FlatMapInsertFind(benchmark::State &state)
{
    Rng rng(1);
    std::vector<std::uint64_t> keys(1 << 16);
    for (auto &k : keys)
        k = rng.nextU64();
    for (auto _ : state) {
        FlatMap<std::uint64_t> map(keys.size());
        for (std::uint64_t k : keys)
            map[k] = k;
        std::uint64_t sum = 0;
        for (std::uint64_t k : keys)
            sum += *map.find(k);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 2 * keys.size());
}
BENCHMARK(BM_FlatMapInsertFind);

void
BM_LogHistogramAdd(benchmark::State &state)
{
    Rng rng(2);
    std::vector<std::uint64_t> values(1 << 16);
    for (auto &v : values)
        v = static_cast<std::uint64_t>(rng.logUniform(1, 1e12));
    LogHistogram hist(7);
    for (auto _ : state) {
        for (std::uint64_t v : values)
            hist.add(v);
    }
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_LogHistogramAdd);

void
BM_P2QuantileAdd(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> values(1 << 16);
    for (auto &v : values)
        v = rng.uniform();
    P2Quantile p(0.95);
    for (auto _ : state) {
        for (double v : values)
            p.add(v);
    }
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_P2QuantileAdd);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler zipf(1 << 20, 0.9);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_CachePolicy(benchmark::State &state, const char *policy)
{
    Rng rng(5);
    ZipfSampler zipf(1 << 16, 0.9);
    std::vector<std::uint64_t> keys(1 << 16);
    for (auto &k : keys)
        k = zipf.sample(rng);
    auto cache = makeCachePolicy(policy, 1 << 12);
    for (auto _ : state) {
        std::uint64_t hits = 0;
        for (std::uint64_t k : keys)
            hits += cache->access(k);
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK_CAPTURE(BM_CachePolicy, lru, "lru");
BENCHMARK_CAPTURE(BM_CachePolicy, clock, "clock");
BENCHMARK_CAPTURE(BM_CachePolicy, arc, "arc");

void
BM_ReuseDistance(benchmark::State &state)
{
    Rng rng(6);
    ZipfSampler zipf(1 << 14, 0.9);
    std::vector<std::uint64_t> keys(1 << 15);
    for (auto &k : keys)
        k = zipf.sample(rng);
    for (auto _ : state) {
        ReuseDistance rd;
        for (std::uint64_t k : keys)
            benchmark::DoNotOptimize(rd.access(k));
    }
    state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_ReuseDistance);

void
BM_SyntheticGeneration(benchmark::State &state)
{
    PopulationSpec spec = aliCloudSpanSpec(SpanScale{20, 50000});
    for (auto _ : state) {
        auto source = makeTrace(spec, 1);
        IoRequest req;
        std::uint64_t count = 0;
        while (source->next(req))
            ++count;
        benchmark::DoNotOptimize(count);
        state.SetItemsProcessed(state.items_processed() + count);
    }
}
BENCHMARK(BM_SyntheticGeneration);

void
BM_AnalyzerPipeline(benchmark::State &state)
{
    auto source = makeTrace(aliCloudSpanSpec(SpanScale{20, 50000}), 1);
    VectorSource requests(drain(*source));
    for (auto _ : state) {
        requests.reset();
        BasicStatsAnalyzer basic;
        TemporalPairsAnalyzer pairs;
        runPipeline(requests, {&basic, &pairs});
        benchmark::DoNotOptimize(basic.stats().requests());
    }
    state.SetItemsProcessed(state.iterations() *
                            requests.requests().size());
}
BENCHMARK(BM_AnalyzerPipeline);

void
BM_CsvParse(benchmark::State &state)
{
    auto source = makeTrace(aliCloudSpanSpec(SpanScale{10, 20000}), 1);
    std::ostringstream csv;
    AliCloudCsvWriter writer(csv);
    IoRequest req;
    while (source->next(req))
        writer.write(req);
    std::string text = csv.str();
    for (auto _ : state) {
        std::istringstream in(text);
        AliCloudCsvReader reader(in);
        std::uint64_t count = 0;
        while (reader.next(req))
            ++count;
        benchmark::DoNotOptimize(count);
        state.SetItemsProcessed(state.items_processed() + count);
    }
    state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_CsvParse);

void
BM_BinTraceParse(benchmark::State &state)
{
    auto source = makeTrace(aliCloudSpanSpec(SpanScale{10, 20000}), 1);
    std::stringstream bin;
    BinTraceWriter writer(bin);
    IoRequest req;
    while (source->next(req))
        writer.write(req);
    writer.finish();
    std::string bytes = bin.str();
    for (auto _ : state) {
        std::istringstream in(bytes);
        BinTraceReader reader(in);
        std::uint64_t count = 0;
        while (reader.next(req))
            ++count;
        benchmark::DoNotOptimize(count);
        state.SetItemsProcessed(state.items_processed() + count);
    }
    state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_BinTraceParse);

} // namespace
} // namespace cbs

BENCHMARK_MAIN();
