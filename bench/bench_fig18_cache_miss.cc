/**
 * @file
 * Reproduces Fig. 18 (Finding 15): per-volume LRU miss ratios for
 * reads and writes under cache sizes of 1% and 10% of each volume's
 * WSS (two-pass simulation, unified read/write cache).
 */

#include <cstdio>

#include "analysis/cache_miss.h"
#include "common/format.h"
#include "report/series.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 18 / Finding 15: LRU miss ratios at 1% / 10% of WSS",
        "paper p25 at 10% WSS: reads 59.4% / 64.1%, writes 30.7% / "
        "32.0%; AliCloud gains more from the larger cache");

    // Uniform thinning keeps reuse distances (requests) unchanged but
    // shrinks per-volume WSS-proportional caches; a deeper-history
    // AliCloud variant (fewer volumes, same total requests) restores
    // the paper's cache-depth-to-reuse-distance ratio (DESIGN.md 5).
    TraceBundle bundles[2] = {aliCloudSpan(SpanScale{60, 4.0e6}),
                              msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        CacheMissAnalyzer sim({0.01, 0.10});
        sim.runTwoPass(*bundle.source);
        bool ali = bundle.label == "AliCloud";

        auto pct = [](double v) { return formatPercent(v); };
        std::printf("--- %s (boxplots across volumes) ---\n",
                    bundle.label.c_str());
        for (std::size_t i = 0; i < sim.fractionCount(); ++i) {
            char label[48];
            std::snprintf(label, sizeof(label), "reads,  cache %g%% WSS",
                          sim.fractionAt(i) * 100);
            printBoxplot(label,
                         BoxplotSummary::compute(sim.readMissRatios(i)),
                         pct);
            std::snprintf(label, sizeof(label), "writes, cache %g%% WSS",
                          sim.fractionAt(i) * 100);
            printBoxplot(
                label, BoxplotSummary::compute(sim.writeMissRatios(i)),
                pct);
        }

        double read_p25_small = sim.readMissRatios(0).quantile(0.25);
        double read_p25_large = sim.readMissRatios(1).quantile(0.25);
        double write_p25_small = sim.writeMissRatios(0).quantile(0.25);
        double write_p25_large = sim.writeMissRatios(1).quantile(0.25);
        std::printf("  p25 read miss 1%%->10%%:  %s -> %s  (paper: %s)\n",
                    pct(read_p25_small).c_str(),
                    pct(read_p25_large).c_str(),
                    ali ? "96.1% -> 59.4%" : "86.9% -> 64.1%");
        std::printf("  p25 write miss 1%%->10%%: %s -> %s  (paper: %s)\n\n",
                    pct(write_p25_small).c_str(),
                    pct(write_p25_large).c_str(),
                    ali ? "52.8% -> 30.7%" : "46.2% -> 32.1%");
    }
    return 0;
}
