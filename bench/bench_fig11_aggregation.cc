/**
 * @file
 * Reproduces Fig. 11 (Finding 9): boxplots of the traffic share of the
 * top-1% and top-10% read and write blocks across volumes.
 */

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/block_traffic.h"
#include "common/format.h"
#include "report/series.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 11 / Finding 9: traffic aggregation in top-k% blocks",
        "paper (AliCloud): p25 of read traffic in top-1%/top-10% "
        "blocks = 2.5%/13.6%; writes more aggregated: 13.0%/31.2%");

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        BlockTrafficAnalyzer traffic;
        runPipeline(*bundle.source, {&traffic});

        auto pct = [](double v) { return formatPercent(v); };
        std::printf("--- %s (boxplots across volumes) ---\n",
                    bundle.label.c_str());
        printBoxplot("top-1%  read blocks",
                     BoxplotSummary::compute(traffic.readTop1()), pct);
        printBoxplot("top-10% read blocks",
                     BoxplotSummary::compute(traffic.readTop10()), pct);
        printBoxplot("top-1%  write blocks",
                     BoxplotSummary::compute(traffic.writeTop1()), pct);
        printBoxplot("top-10% write blocks",
                     BoxplotSummary::compute(traffic.writeTop10()),
                     pct);
        std::printf("\n");
    }
    return 0;
}
