/**
 * @file
 * Reproduces Fig. 15 and the RAR/WAR half of Table V (Finding 13):
 * elapsed times and counts of read-after-read and write-after-read
 * pairs.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/temporal_pairs.h"
#include "common/format.h"
#include "report/series.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 15 + Table V (RAR/WAR) / Finding 13",
        "paper: RAR medians 2.0min (AliCloud) / 5.0min (MSRC); WAR "
        "medians 18.3h / 5.5h; RAR count = 2.5x / 4.2x WAR count");

    TextTable table5("Table V: RAR / WAR pair counts (paper-equiv, M)");
    table5.header({"trace", "RAR", "paper", "WAR", "paper"});

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        TemporalPairsAnalyzer pairs;
        runPipeline(*bundle.source, {&pairs});
        bool ali = bundle.label == "AliCloud";

        auto dur = [](double v) { return formatDurationUs(v); };
        std::printf("--- %s (Fig. 15 elapsed-time CDFs) ---\n",
                    bundle.label.c_str());
        printHistQuantiles("RAR time", pairs.times(PairKind::RAR),
                           {0.25, 0.5, 0.75, 0.9}, dur);
        printHistQuantiles("WAR time", pairs.times(PairKind::WAR),
                           {0.25, 0.5, 0.75, 0.9}, dur);
        std::printf(
            "  RAR < 1 min: %s   (paper: %s)\n",
            formatPercent(
                pairs.times(PairKind::RAR).cdfAt(units::minute))
                .c_str(),
            ali ? "22.1%" : "35.6%");
        std::printf(
            "  WAR < 1 min: %s   (paper: %s)\n",
            formatPercent(
                pairs.times(PairKind::WAR).cdfAt(units::minute))
                .c_str(),
            ali ? "2.8%" : "29.2%");
        std::printf(
            "  WAR > 1 h:   %s   (paper: %s)\n",
            formatPercent(
                1 - pairs.times(PairKind::WAR).cdfAt(units::hour))
                .c_str(),
            ali ? "88.8%" : "66.7%");
        double rar_to_war =
            pairs.count(PairKind::WAR)
                ? static_cast<double>(pairs.count(PairKind::RAR)) /
                      static_cast<double>(pairs.count(PairKind::WAR))
                : 0.0;
        std::printf("  RAR/WAR count ratio: %.2f   (paper: %s)\n\n",
                    rar_to_war, ali ? "2.54" : "4.19");

        auto scaledM = [&](PairKind kind) {
            return formatMillions(static_cast<std::uint64_t>(
                static_cast<double>(pairs.count(kind)) *
                bundle.count_scale));
        };
        table5.row({bundle.label, scaledM(PairKind::RAR),
                    ali ? "29,845.0" : "1,382.6", scaledM(PairKind::WAR),
                    ali ? "11,760.6" : "330.0"});
    }
    table5.print(std::cout);
    return 0;
}
