/**
 * @file
 * The paper's §V design implications, quantified on the calibrated
 * traces:
 *
 *  1. write off-loading (Findings 5-7): idle-time gain when writes are
 *     redirected away from volumes;
 *  2. load balancing (Findings 1-3): placement-policy imbalance on the
 *     burstiness-calibrated population;
 *  3. flash management (Findings 8/11/14): FTL write amplification of
 *     the AliCloud write stream vs. a log-structured remapping of the
 *     same stream.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "common/format.h"
#include "report/table.h"
#include "report/workbench.h"
#include "sim/ftl.h"
#include "sim/load_balancer.h"
#include "sim/write_cache.h"
#include "sim/write_offload.h"

using namespace cbs;

namespace {

void
writeOffloadStudy()
{
    std::printf("== 1. Write off-loading (Findings 5-7) ==\n");
    TraceBundle bundles[2] = {aliCloudSpan(SpanScale{120, 1.0e6}),
                              msrcSpan(SpanScale{36, 0.6e6})};
    for (TraceBundle &bundle : bundles) {
        WriteOffloadSim sim(units::minute, bundle.spec.duration);
        runPipeline(*bundle.source, {&sim});
        const auto &summary = sim.summary();
        std::printf("  %-9s idle %s -> %s with writes off-loaded "
                    "(gain %s)\n",
                    bundle.label.c_str(),
                    formatPercent(summary.baseline_idle_fraction)
                        .c_str(),
                    formatPercent(summary.offloaded_idle_fraction)
                        .c_str(),
                    formatPercent(summary.gain()).c_str());
    }
    std::printf("\n");
}

void
loadBalanceStudy()
{
    std::printf("== 2. Load balancing (Findings 1-3) ==\n");
    PopulationSpec spec = aliCloudBurstinessSpec(96);
    auto source = makeTrace(spec, kBenchSeed);
    LoadMatrixAnalyzer matrix(10 * units::minute, spec.duration);
    runPipeline(*source, {&matrix});
    LoadBalancer balancer(matrix, 8);
    for (PlacementPolicy policy :
         {PlacementPolicy::RoundRobin, PlacementPolicy::Random,
          PlacementPolicy::LeastLoaded, PlacementPolicy::BurstAware}) {
        PlacementResult result = balancer.place(policy, 3);
        std::printf("  %-13s total imbalance %.2f, worst interval "
                    "%.2f\n",
                    placementPolicyName(policy),
                    result.total_imbalance,
                    result.worst_interval_imbalance);
    }
    std::printf("\n");
}

void
flashStudy()
{
    std::printf("== 3. Flash management (Findings 8/11/14) ==\n");
    // Replay the AliCloud write stream of a mid-size device through
    // the FTL twice: as-is (random small writes) and remapped into a
    // log (the paper's log-structured recommendation).
    FtlConfig config;
    config.flash_blocks = 1024;
    config.pages_per_block = 64;
    config.gc_reserve_blocks = 8;
    config.op_ratio = 0.875;

    FtlSim direct(config);
    FtlSim logged(config);
    std::uint64_t log_head = 0;

    TraceBundle bundle = aliCloudSpan(SpanScale{8, 0.8e6});
    IoRequest req;
    std::uint64_t pages = direct.logicalPages();
    while (bundle.source->next(req)) {
        if (!req.isWrite())
            continue;
        forEachBlock(req, kDefaultBlockSize, [&](BlockNo block) {
            direct.writePage(block % pages);
            logged.writePage(log_head++ % pages);
        });
    }
    std::printf("  direct (in-place) write amplification: %.2f, wear "
                "spread %.2f\n",
                direct.writeAmplification(), direct.wearSpread());
    std::printf("  log-structured remap amplification:    %.2f, wear "
                "spread %.2f\n",
                logged.writeAmplification(), logged.wearSpread());
    std::printf("  -> the log-structured design avoids %.0f%% of "
                "flash writes on this workload\n\n",
                (1.0 - logged.writeAmplification() /
                           direct.writeAmplification()) *
                    100.0);
}

void
writeCacheStudy()
{
    std::printf("== 4. Staging write cache (Findings 12-13) ==\n");
    // The Griffin bet: short WAW times mean overwrites coalesce in a
    // staging cache, long RAW times mean few reads hit it.
    TraceBundle bundle = aliCloudSpan(SpanScale{60, 1.0e6});
    WriteCacheConfig config;
    config.capacity_blocks = 1 << 18;
    config.max_residency = units::hour;
    WriteCacheSim sim(config);
    runPipeline(*bundle.source, {&sim});
    const auto &stats = sim.stats();
    std::printf("  write absorption: %s of write traffic coalesced "
                "before destage\n",
                formatPercent(stats.absorptionRatio()).c_str());
    std::printf("  destage traffic:  %s of offered writes reach "
                "primary storage\n",
                formatPercent(stats.destageRatio()).c_str());
    std::printf("  staged reads:     %s of reads served from the "
                "staging device\n",
                formatPercent(stats.stagedReadRatio()).c_str());
    std::printf("  -> high absorption with rare staged reads is the "
                "paper's argument for disk-based write caching\n\n");
}

} // namespace

int
main()
{
    printBenchHeader("Section V design implications, quantified");
    writeOffloadStudy();
    loadBalanceStudy();
    flashStudy();
    writeCacheStudy();
    return 0;
}
