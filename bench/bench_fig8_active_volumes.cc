/**
 * @file
 * Reproduces Fig. 8 (Findings 5-7): numbers of active, read-active,
 * and write-active volumes over time.
 *
 * The paper uses 10-minute intervals; the scaled span traces carry
 * ~5000x fewer requests, so the bench uses proportionally wider
 * intervals (12 h AliCloud; MSRC keeps the paper's 10 min) to keep the expected
 * requests-per-volume-per-interval at paper scale (DESIGN.md §5). The
 * headline shapes — "Active" ~= "Write-active", much lower
 * "Read-active" — are preserved.
 */

#include <algorithm>
#include <cstdio>

#include "analysis/activeness.h"
#include "analysis/analyzer.h"
#include "common/format.h"
#include "report/workbench.h"

using namespace cbs;

namespace {

void
printSparkline(const char *label, const std::vector<std::uint32_t> &s,
               std::size_t buckets)
{
    // Downsample the series to `buckets` columns of max values.
    std::printf("  %-13s", label);
    std::uint32_t global_max = 1;
    for (std::uint32_t v : s)
        global_max = std::max(global_max, v);
    static const char *ramp[] = {" ", ".", ":", "-", "=", "+",
                                 "*", "#", "%", "@"};
    for (std::size_t b = 0; b < buckets; ++b) {
        std::size_t lo = b * s.size() / buckets;
        std::size_t hi = std::max(lo + 1, (b + 1) * s.size() / buckets);
        std::uint32_t m = 0;
        for (std::size_t i = lo; i < hi && i < s.size(); ++i)
            m = std::max(m, s[i]);
        std::printf("%s", ramp[m * 9 / global_max]);
    }
    std::uint64_t sum = 0;
    for (std::uint32_t v : s)
        sum += v;
    std::printf("  mean=%.0f max=%u\n",
                static_cast<double>(sum) / s.size(), global_max);
}

} // namespace

int
main()
{
    printBenchHeader(
        "Fig. 8 / Findings 5-7: active volume counts over time",
        "'Active' and 'Write-active' nearly overlap; removing writes "
        "drops active counts by 58-74% (AliCloud) / 25-66% (MSRC)");

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        bool ali = bundle.label == "AliCloud";
        TimeUs interval =
            ali ? 12 * units::hour : 10 * units::minute;
        ActivenessAnalyzer act(interval, bundle.spec.duration);
        runPipeline(*bundle.source, {&act});

        std::printf("--- %s (interval = %s) ---\n",
                    bundle.label.c_str(),
                    formatDurationUs(static_cast<double>(interval))
                        .c_str());
        printSparkline("active", act.seriesOf(ActivenessAnalyzer::kActive),
                       60);
        printSparkline("write-active",
                       act.seriesOf(ActivenessAnalyzer::kWriteActive),
                       60);
        printSparkline("read-active",
                       act.seriesOf(ActivenessAnalyzer::kReadActive),
                       60);

        // Reduction of active volumes when writes are removed.
        const auto &active = act.seriesOf(ActivenessAnalyzer::kActive);
        const auto &read_active =
            act.seriesOf(ActivenessAnalyzer::kReadActive);
        double min_red = 1.0;
        double max_red = 0.0;
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (active[i] == 0)
                continue;
            double red = 1.0 - static_cast<double>(read_active[i]) /
                                   static_cast<double>(active[i]);
            min_red = std::min(min_red, red);
            max_red = std::max(max_red, red);
        }
        std::printf("  active-count reduction without writes: "
                    "%s - %s   (paper: %s)\n\n",
                    formatPercent(min_red).c_str(),
                    formatPercent(max_red).c_str(),
                    ali ? "58.3-73.6%" : "24.6-65.8%");
    }
    return 0;
}
