/**
 * @file
 * Ablation: Finding 15's cache simulation swept across replacement
 * policies (LRU / FIFO / CLOCK / LFU / ARC) at 1% and 10% of WSS.
 *
 * The paper fixes LRU; this sweep quantifies how much the policy
 * choice matters on cloud block storage workloads — the scan-heavy,
 * hot-set-mixing pattern is where ARC's adaptivity and LFU's frequency
 * bias diverge from pure recency.
 */

#include <cstdio>

#include "analysis/cache_miss.h"
#include "common/format.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Ablation: replacement policies on the Finding 15 simulation",
        "median per-volume miss ratios; the paper reports LRU only");

    TraceBundle bundles[2] = {aliCloudSpan(SpanScale{60, 2.0e6}),
                              msrcSpan(SpanScale{36, 1.0e6})};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        std::printf("--- %s (median read / write miss ratios) ---\n",
                    bundle.label.c_str());
        std::printf("  %-8s  %-22s  %-22s\n", "policy",
                    "cache 1% WSS (R/W)", "cache 10% WSS (R/W)");
        for (const char *policy :
             {"lru", "fifo", "clock", "lfu", "arc"}) {
            CacheMissAnalyzer sim({0.01, 0.10}, kDefaultBlockSize,
                                  policy);
            sim.runTwoPass(*bundle.source);
            bundle.source->reset();
            std::printf(
                "  %-8s  %-9s / %-10s  %-9s / %-10s\n", policy,
                formatPercent(sim.readMissRatios(0).quantile(0.5))
                    .c_str(),
                formatPercent(sim.writeMissRatios(0).quantile(0.5))
                    .c_str(),
                formatPercent(sim.readMissRatios(1).quantile(0.5))
                    .c_str(),
                formatPercent(sim.writeMissRatios(1).quantile(0.5))
                    .c_str());
        }
        std::printf("\n");
    }
    return 0;
}
