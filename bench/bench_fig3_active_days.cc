/**
 * @file
 * Reproduces Fig. 3: cumulative distributions of the number of active
 * days across all volumes (a volume is active on a day if it receives
 * at least one request).
 *
 * Paper: 15.7% of AliCloud volumes are active for only one day; all
 * MSRC volumes are active for all 7 days.
 */

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/volume_activity.h"
#include "common/format.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader("Fig. 3: active days per volume",
                     "paper: AliCloud 15.7% one-day volumes; MSRC all "
                     "volumes active all 7 days");

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        ActiveDaysAnalyzer days;
        runPipeline(*bundle.source, {&days});

        int max_days = bundle.label == "AliCloud" ? 31 : 7;
        std::printf("--- %s (CDF of active days) ---\n",
                    bundle.label.c_str());
        for (int d : {1, 2, 5, 10, 20, max_days}) {
            if (d > max_days)
                continue;
            std::printf("  <= %2d days: %s of volumes\n", d,
                        formatPercent(days.activeDays().at(d)).c_str());
        }
        std::printf("  exactly 1 day: %s   (paper: %s)\n",
                    formatPercent(days.fractionWithDays(1)).c_str(),
                    bundle.label == "AliCloud" ? "15.7%" : "0.0%");
        std::printf("  full duration: %s   (paper: %s)\n\n",
                    formatPercent(days.fractionWithDays(max_days)).c_str(),
                    bundle.label == "AliCloud" ? "~60%" : "100%");
    }
    return 0;
}
