/**
 * @file
 * Ablation: SHARDS sampled miss-ratio curves vs. the exact Mattson
 * computation on the calibrated AliCloud trace.
 *
 * The paper points at SHARDS/Counter Stacks for production-scale cache
 * modeling; this bench quantifies the accuracy/cost trade-off on cloud
 * block storage workloads: mean absolute miss-ratio error and tracked
 * state vs. sampling rate.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cache/reuse_distance.h"
#include "cache/shards.h"
#include "common/format.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Ablation: SHARDS sampling rate vs. exact miss-ratio curves",
        "mean |error| over cache sizes 0.1%-50% of WSS");

    TraceBundle bundle = aliCloudSpan(SpanScale{40, 1.0e6});
    printBundleInfo(bundle);

    // Materialize the block-access stream once.
    std::vector<std::uint64_t> accesses;
    IoRequest req;
    while (bundle.source->next(req)) {
        forEachBlock(req, kDefaultBlockSize, [&](BlockNo block) {
            accesses.push_back(blockKey(req.volume, block));
        });
    }
    std::printf("block accesses: %s\n\n",
                formatCount(accesses.size()).c_str());

    ReuseDistance exact;
    auto exact_start = std::chrono::steady_clock::now();
    for (std::uint64_t key : accesses)
        exact.access(key);
    double exact_sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() -
                           exact_start)
                           .count();
    std::uint64_t wss = exact.uniqueKeys();
    std::vector<std::uint64_t> capacities;
    for (double frac : {0.001, 0.005, 0.02, 0.1, 0.3, 0.5})
        capacities.push_back(static_cast<std::uint64_t>(
            std::max(1.0, frac * static_cast<double>(wss))));

    std::printf("exact: WSS %s blocks, %.2fs\n",
                formatCount(wss).c_str(), exact_sec);
    std::printf("%-8s  %-14s  %-12s  %s\n", "rate", "tracked keys",
                "runtime", "mean |error|");
    for (double rate : {0.5, 0.2, 0.1, 0.05, 0.01}) {
        ShardsReuseDistance shards(rate);
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t key : accesses)
            shards.access(key);
        double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        double err_sum = 0;
        for (std::uint64_t c : capacities)
            err_sum += std::fabs(shards.missRatioAt(c) -
                                 exact.missRatioAt(c));
        std::printf("%-8.2f  %-14s  %-12s  %.3f\n", rate,
                    formatCount(shards.sampledCount()).c_str(),
                    (formatFixed(sec, 2) + "s").c_str(),
                    err_sum / static_cast<double>(capacities.size()));
    }
    std::printf("\nexact curve for reference:\n");
    for (std::uint64_t c : capacities)
        std::printf("  cache %-12s miss %s\n",
                    formatCount(c).c_str(),
                    formatPercent(exact.missRatioAt(c)).c_str());
    return 0;
}
