/**
 * @file
 * Reproduces Fig. 4: cumulative distributions of per-volume
 * write-to-read ratios.
 *
 * Paper: 91.5% of AliCloud volumes are write-dominant (ratio > 1) and
 * 42.4% exceed 100; only 53% of MSRC volumes are write-dominant.
 */

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/volume_activity.h"
#include "common/format.h"
#include "report/table.h"
#include "report/workbench.h"

#include <iostream>

using namespace cbs;

int
main()
{
    printBenchHeader("Fig. 4: per-volume write-to-read ratios");

    TextTable table("Write-dominance across volumes");
    table.header({"metric", "AliCloud", "paper", "MSRC", "paper"});

    std::string ali_gt1, ali_gt100, msrc_gt1, msrc_gt100;
    std::string ali_overall, msrc_overall;
    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        WriteReadRatioAnalyzer ratios;
        runPipeline(*bundle.source, {&ratios});

        std::printf("--- %s (CDF spot values) ---\n",
                    bundle.label.c_str());
        for (double t : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
            std::printf("  ratio > %-6g: %s of volumes\n", t,
                        formatPercent(ratios.fractionAbove(t)).c_str());
        }
        std::printf("\n");

        std::string gt1 = formatPercent(ratios.fractionAbove(1.0));
        std::string gt100 = formatPercent(ratios.fractionAbove(100.0));
        double overall =
            ratios.totalReads()
                ? static_cast<double>(ratios.totalWrites()) /
                      static_cast<double>(ratios.totalReads())
                : 0.0;
        if (bundle.label == "AliCloud") {
            ali_gt1 = gt1;
            ali_gt100 = gt100;
            ali_overall = formatFixed(overall, 2);
        } else {
            msrc_gt1 = gt1;
            msrc_gt100 = gt100;
            msrc_overall = formatFixed(overall, 2);
        }
    }

    table.row({"write-dominant volumes", ali_gt1, "91.5%", msrc_gt1,
               "52.8%"});
    table.row({"volumes with ratio > 100", ali_gt100, "42.4%",
               msrc_gt100, "~0%"});
    table.row({"overall W:R ratio", ali_overall, "3.00", msrc_overall,
               "0.42"});
    table.print(std::cout);
    return 0;
}
