/**
 * @file
 * Reproduces Fig. 5 (Finding 1): average and peak intensities of
 * volumes. Runs on the intensity-variant traces, which keep per-volume
 * request rates at paper scale (median 2.55 / 3.36 req/s) over a short
 * window, so the req/s values are directly comparable; the 31-day
 * span trace cannot preserve them (DESIGN.md §5).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/load_intensity.h"
#include "common/format.h"
#include "report/series.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 5 / Finding 1: average and peak intensities of volumes",
        "paper: medians 2.55 (AliCloud) / 3.36 (MSRC) req/s; <3% of "
        "volumes above 100 req/s; ~72-82% below 10 req/s");

    TraceBundle bundles[2] = {aliCloudIntensity(), msrcIntensity()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        LoadIntensityAnalyzer intensity(units::minute);
        runPipeline(*bundle.source, {&intensity});

        std::printf("--- %s ---\n", bundle.label.c_str());
        auto reqs = [](double v) { return formatFixed(v, 2) + " req/s"; };
        printCdfQuantiles("avg intensity", intensity.avgIntensities(),
                          {0.25, 0.5, 0.75, 0.9, 0.99}, reqs);
        printCdfQuantiles("peak intensity (1-min)",
                          intensity.peakIntensities(),
                          {0.25, 0.5, 0.75, 0.9, 0.99}, reqs);

        const Ecdf &avg = intensity.avgIntensities();
        std::printf("  volumes with avg > 100 req/s: %s"
                    "   (paper: %s)\n",
                    formatPercent(1.0 - avg.at(100.0)).c_str(),
                    bundle.label == "AliCloud" ? "1.90%" : "2.78%");
        std::printf("  volumes with avg < 10 req/s:  %s"
                    "   (paper: %s)\n",
                    formatPercent(avg.at(10.0)).c_str(),
                    bundle.label == "AliCloud" ? "81.6%" : "72.2%");
        std::printf("  median avg intensity: %s   (paper: %s)\n",
                    reqs(avg.quantile(0.5)).c_str(),
                    bundle.label == "AliCloud" ? "2.55 req/s"
                                               : "3.36 req/s");
        std::printf("  max peak intensity: %s   (paper: %s)\n",
                    reqs(intensity.peakIntensities().quantile(1.0))
                        .c_str(),
                    bundle.label == "AliCloud" ? "4926.8 req/s"
                                               : "4633.6 req/s");

        // Fig. 5's actual presentation: volumes sorted by average
        // intensity (descending), avg and peak curves side by side.
        auto stats = intensity.volumeStats();
        std::sort(stats.begin(), stats.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.avgIntensity() >
                             b.second.avgIntensity();
                  });
        std::printf("  sorted curve (rank: avg / peak req/s):\n   ");
        std::size_t points = 8;
        for (std::size_t i = 0; i < points; ++i) {
            std::size_t idx =
                i * (stats.size() - 1) / (points - 1);
            std::printf(" #%zu: %.2f/%.1f", idx + 1,
                        stats[idx].second.avgIntensity(),
                        stats[idx].second.peakIntensity(
                            units::minute));
        }
        std::printf("\n\n");
    }
    return 0;
}
