/**
 * @file
 * Reproduces Fig. 7 (Finding 4): per-volume inter-arrival time
 * percentiles, one boxplot per percentile group. Runs on the
 * intensity-variant traces (paper-scale rates, so the µs/ms magnitudes
 * are comparable).
 */

#include <cstdio>

#include <vector>

#include "analysis/analyzer.h"
#include "analysis/interarrival.h"
#include "analysis/per_volume.h"
#include "common/format.h"
#include "report/series.h"
#include "report/workbench.h"
#include "stats/dist_fit.h"
#include "stats/reservoir.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 7 / Finding 4: inter-arrival times of requests",
        "paper medians of p25/p50/p75 groups: AliCloud 31us/145us/"
        "735us; MSRC 3.5us/30.5us/1.3ms");

    TraceBundle bundles[2] = {aliCloudIntensity(), msrcIntensity()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        InterarrivalAnalyzer inter;
        runPipeline(*bundle.source, {&inter});

        std::printf("--- %s (boxplots across volumes) ---\n",
                    bundle.label.c_str());
        auto dur = [](double v) { return formatDurationUs(v); };
        for (std::size_t i = 0;
             i < InterarrivalAnalyzer::kPercentiles.size(); ++i) {
            char label[32];
            std::snprintf(label, sizeof(label), "p%.0f group",
                          InterarrivalAnalyzer::kPercentiles[i] * 100);
            printBoxplot(label, inter.boxplot(i), dur);
        }

        // Extension (after the paper's distribution-fitting reference
        // [27]): which family best explains the inter-arrival times?
        bundle.source->reset();
        Reservoir<double> gaps(200000, 7);
        PerVolume<TimeUs> last;
        IoRequest req;
        while (bundle.source->next(req)) {
            TimeUs &prev = last[req.volume];
            if (prev != 0 && req.timestamp > prev)
                gaps.add(static_cast<double>(req.timestamp - prev));
            prev = req.timestamp;
        }
        auto fits = fitDistributions(gaps.sample());
        std::printf("  MLE distribution fit of per-volume gaps "
                    "(AIC-ranked):\n");
        for (const auto &fit : fits) {
            std::printf("    %-12s logL=%.3g  median=%s\n", fit.name(),
                        fit.log_likelihood,
                        formatDurationUs(fit.quantile(0.5)).c_str());
        }
        std::printf("\n");
    }
    return 0;
}
