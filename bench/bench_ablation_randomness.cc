/**
 * @file
 * Ablation: Finding 8's randomness metric swept over its two design
 * constants — the history window (paper: 32 previous requests) and the
 * distance threshold (paper: 128 KiB).
 *
 * Shows how sensitive the "AliCloud is more random than MSRC"
 * conclusion is to the metric definition.
 */

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/randomness.h"
#include "common/format.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Ablation: randomness-ratio window and threshold sweep",
        "paper setting: window 32, threshold 128 KiB");

    TraceBundle bundles[2] = {aliCloudSpan(SpanScale{120, 1.5e6}),
                              msrcSpan(SpanScale{36, 0.8e6})};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        std::printf("--- %s (median / p90 randomness ratio) ---\n",
                    bundle.label.c_str());

        std::printf("  window sweep (threshold 128 KiB):\n");
        for (std::size_t window : {4u, 8u, 16u, 32u, 64u}) {
            RandomnessAnalyzer rand(window, 128 * units::KiB);
            runPipeline(*bundle.source, {&rand});
            bundle.source->reset();
            std::printf("    window %-3zu  median %-7s  p90 %s%s\n",
                        window,
                        formatPercent(rand.ratios().quantile(0.5))
                            .c_str(),
                        formatPercent(rand.ratios().quantile(0.9))
                            .c_str(),
                        window == 32 ? "   <- paper setting" : "");
        }

        std::printf("  threshold sweep (window 32):\n");
        for (std::uint64_t threshold_kib : {16u, 64u, 128u, 512u, 2048u}) {
            RandomnessAnalyzer rand(32, threshold_kib * units::KiB);
            runPipeline(*bundle.source, {&rand});
            bundle.source->reset();
            std::printf("    %-5llu KiB   median %-7s  p90 %s%s\n",
                        static_cast<unsigned long long>(threshold_kib),
                        formatPercent(rand.ratios().quantile(0.5))
                            .c_str(),
                        formatPercent(rand.ratios().quantile(0.9))
                            .c_str(),
                        threshold_kib == 128 ? "   <- paper setting"
                                             : "");
        }
        std::printf("\n");
    }
    return 0;
}
