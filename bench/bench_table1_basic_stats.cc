/**
 * @file
 * Reproduces Table I: basic statistics of AliCloud and MSRC — request
 * counts, traffic volumes, and working-set sizes — plus the derived
 * §III-C observations (write-to-read ratio, read/write WSS shares).
 *
 * Counts are measured on the scaled traces and shown next to their
 * paper-equivalent magnitudes (measured x count_scale); ratios and
 * shares are directly comparable.
 */

#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/basic_stats.h"
#include "common/format.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

namespace {

/** Paper values (Table I) for the side-by-side columns. */
struct PaperColumn
{
    double volumes;
    double days;
    double reads_m;
    double writes_m;
    double read_tib;
    double write_tib;
    double update_tib;
    double total_wss_tib;
    double read_wss_tib;
    double write_wss_tib;
    double update_wss_tib;
};

constexpr PaperColumn kPaperAli = {1000, 31,   5058.6, 15174.4, 161.6,
                                   455.5, 429.2, 29.5,  10.1,   26.3,
                                   18.6};
constexpr PaperColumn kPaperMsrc = {36,   7,    304.9, 128.9, 9.04,
                                    2.39, 2.01, 2.87,  2.82,  0.38,
                                    0.17};

std::string
scaledMillions(std::uint64_t measured, double scale)
{
    return formatFixed(static_cast<double>(measured) * scale / 1e6, 1);
}

std::string
scaledTiB(std::uint64_t bytes, double scale)
{
    return formatFixed(static_cast<double>(bytes) * scale /
                           static_cast<double>(units::TiB),
                       2);
}

} // namespace

int
main()
{
    printBenchHeader(
        "Table I: basic statistics of AliCloud and MSRC",
        "measured counts are scaled to paper-equivalents via the "
        "count-scale factor (DESIGN.md 5)");

    TraceBundle ali = aliCloudSpan();
    TraceBundle msrc = msrcSpan();
    printBundleInfo(ali);
    printBundleInfo(msrc);
    std::printf("\n");

    BasicStatsAnalyzer ali_stats;
    runPipeline(*ali.source, {&ali_stats});
    BasicStatsAnalyzer msrc_stats;
    runPipeline(*msrc.source, {&msrc_stats});

    auto emit = [](const char *metric, const std::string &ali_v,
                   double ali_paper, const std::string &msrc_v,
                   double msrc_paper, TextTable &table) {
        table.row({metric, ali_v, formatFixed(ali_paper, 1), msrc_v,
                   formatFixed(msrc_paper, 1)});
    };

    const BasicStats &a = ali_stats.stats();
    const BasicStats &m = msrc_stats.stats();
    double as = ali.count_scale;
    double ms = msrc.count_scale;

    TextTable table("Table I (paper-equivalent magnitudes)");
    table.header({"metric", "AliCloud", "paper", "MSRC", "paper"});
    emit("volumes", formatCount(a.volumes), kPaperAli.volumes,
         formatCount(m.volumes), kPaperMsrc.volumes, table);
    emit("duration (days)",
         formatFixed(static_cast<double>(a.last_timestamp -
                                         a.first_timestamp) /
                         static_cast<double>(units::day),
                     1),
         kPaperAli.days,
         formatFixed(static_cast<double>(m.last_timestamp -
                                         m.first_timestamp) /
                         static_cast<double>(units::day),
                     1),
         kPaperMsrc.days, table);
    emit("reads (M)", scaledMillions(a.reads, as), kPaperAli.reads_m,
         scaledMillions(m.reads, ms), kPaperMsrc.reads_m, table);
    emit("writes (M)", scaledMillions(a.writes, as),
         kPaperAli.writes_m, scaledMillions(m.writes, ms),
         kPaperMsrc.writes_m, table);
    emit("data read (TiB)", scaledTiB(a.read_bytes, as),
         kPaperAli.read_tib, scaledTiB(m.read_bytes, ms),
         kPaperMsrc.read_tib, table);
    emit("data written (TiB)", scaledTiB(a.write_bytes, as),
         kPaperAli.write_tib, scaledTiB(m.write_bytes, ms),
         kPaperMsrc.write_tib, table);
    emit("data updated (TiB)", scaledTiB(a.update_bytes, as),
         kPaperAli.update_tib, scaledTiB(m.update_bytes, ms),
         kPaperMsrc.update_tib, table);
    emit("total WSS (TiB)", scaledTiB(a.total_wss_bytes, as),
         kPaperAli.total_wss_tib, scaledTiB(m.total_wss_bytes, ms),
         kPaperMsrc.total_wss_tib, table);
    emit("read WSS (TiB)", scaledTiB(a.read_wss_bytes, as),
         kPaperAli.read_wss_tib, scaledTiB(m.read_wss_bytes, ms),
         kPaperMsrc.read_wss_tib, table);
    emit("write WSS (TiB)", scaledTiB(a.write_wss_bytes, as),
         kPaperAli.write_wss_tib, scaledTiB(m.write_wss_bytes, ms),
         kPaperMsrc.write_wss_tib, table);
    emit("update WSS (TiB)", scaledTiB(a.update_wss_bytes, as),
         kPaperAli.update_wss_tib, scaledTiB(m.update_wss_bytes, ms),
         kPaperMsrc.update_wss_tib, table);
    table.print(std::cout);

    TextTable derived("Derived ratios (scale-free, directly comparable)");
    derived.header({"metric", "AliCloud", "paper", "MSRC", "paper"});
    derived.row({"write:read ratio",
                 formatFixed(a.writeToReadRatio(), 2), "3.00",
                 formatFixed(m.writeToReadRatio(), 2), "0.42"});
    derived.row({"read WSS share", formatPercent(a.readWssShare()),
                 "34.3%", formatPercent(m.readWssShare()), "98.4%"});
    derived.row({"write WSS share", formatPercent(a.writeWssShare()),
                 "89.4%", formatPercent(m.writeWssShare()), "13.2%"});
    derived.row({"update/write traffic",
                 formatPercent(static_cast<double>(a.update_bytes) /
                               static_cast<double>(a.write_bytes)),
                 "94.2%",
                 formatPercent(static_cast<double>(m.update_bytes) /
                               static_cast<double>(m.write_bytes)),
                 "84.1%"});
    std::printf("\n");
    derived.print(std::cout);
    return 0;
}
