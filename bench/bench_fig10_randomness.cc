/**
 * @file
 * Reproduces Fig. 10 (Finding 8): randomness ratios — (a) CDF across
 * volumes, (b) randomness vs. traffic for the top-10 traffic volumes.
 */

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/randomness.h"
#include "common/format.h"
#include "report/series.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 10 / Finding 8: randomness ratios of volumes",
        "paper: all MSRC volumes below 46% random; 20% of AliCloud "
        "volumes above 50%; top-10 traffic volumes 13.9-83.4% "
        "(AliCloud) vs 11.3-40.8% (MSRC)");

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        RandomnessAnalyzer rand;
        runPipeline(*bundle.source, {&rand});
        bool ali = bundle.label == "AliCloud";

        std::printf("--- %s ---\n", bundle.label.c_str());
        printCdfQuantiles(
            "randomness ratio", rand.ratios(), {0.25, 0.5, 0.75, 0.9},
            [](double v) { return formatPercent(v); });
        std::printf("  volumes with ratio > 50%%: %s   (paper: %s)\n",
                    formatPercent(1 - rand.ratios().at(0.5)).c_str(),
                    ali ? "20%" : "0%");
        std::printf("  max volume ratio: %s   (paper: %s)\n",
                    formatPercent(rand.ratios().quantile(1.0)).c_str(),
                    ali ? ">83%" : "<46%");

        std::printf("  Fig 10(b): top-10 traffic volumes "
                    "(ratio, traffic):\n");
        for (const auto &[ratio, traffic] :
             rand.topTrafficVolumes(10)) {
            std::printf("    %-7s %s (paper-equiv %s)\n",
                        formatPercent(ratio).c_str(),
                        formatBytes(traffic).c_str(),
                        formatBytes(static_cast<std::uint64_t>(
                                        static_cast<double>(traffic) *
                                        bundle.count_scale))
                            .c_str());
        }
        std::printf("\n");
    }
    return 0;
}
