/**
 * @file
 * Reproduces Fig. 13 and Table IV (Finding 11): update coverage
 * (update WSS / total WSS) across volumes.
 */

#include <array>
#include <cstdio>
#include <iostream>

#include "analysis/analyzer.h"
#include "analysis/update_coverage.h"
#include "common/format.h"
#include "report/series.h"
#include "report/table.h"
#include "report/workbench.h"

using namespace cbs;

int
main()
{
    printBenchHeader(
        "Fig. 13 + Table IV / Finding 11: update coverage",
        "paper: AliCloud mean/median/p90 = 76.6/61.2/92.1%; MSRC "
        "36.2/9.4/63.0%; 45.2% of AliCloud volumes above 65%");

    TextTable table4("Table IV: update coverage across volumes");
    table4.header({"metric", "AliCloud", "paper", "MSRC", "paper"});
    std::vector<std::array<std::string, 3>> cells;

    TraceBundle bundles[2] = {aliCloudSpan(), msrcSpan()};
    for (TraceBundle &bundle : bundles) {
        printBundleInfo(bundle);
        UpdateCoverageAnalyzer coverage;
        runPipeline(*bundle.source, {&coverage});
        bool ali = bundle.label == "AliCloud";

        const Ecdf &cdf = coverage.coverage();
        auto pct = [](double v) { return formatPercent(v); };
        std::printf("--- %s (Fig. 13) ---\n", bundle.label.c_str());
        printCdfQuantiles("update coverage", cdf,
                          {0.1, 0.25, 0.5, 0.75, 0.9}, pct);
        std::printf("  volumes above 65%% coverage: %s   (paper: %s)\n\n",
                    formatPercent(1 - cdf.at(0.65)).c_str(),
                    ali ? "45.2%" : "8.3% (3 of 36)");

        cells.push_back({pct(cdf.samples().mean()),
                         pct(cdf.quantile(0.5)), pct(cdf.quantile(0.9))});
    }

    table4.row({"mean", cells[0][0], "76.6%", cells[1][0], "36.2%"});
    table4.row({"median", cells[0][1], "61.2%", cells[1][1], "9.4%"});
    table4.row(
        {"90th percentile", cells[0][2], "92.1%", cells[1][2], "63.0%"});
    table4.print(std::cout);
    return 0;
}
